//! Graceful degradation under device faults.
//!
//! The paper's scaling study (Fig. 4(h)) shows G-DBSCAN dropping out of
//! the comparison at scale: its edge-list memory is quadratic in dense
//! regions and the allocation simply fails. A production pipeline cannot
//! stop there — it steps down to an algorithm with a smaller footprint
//! and keeps going. [`run_resilient`] encodes that ladder:
//!
//! ```text
//! G-DBSCAN  ──OOM──▶  FDBSCAN-DenseBox  ──OOM──▶  FDBSCAN  ──OOM──▶  sequential
//! (O(edges))          (linear, grid+tree)         (linear, tree)     (host, O(1) device)
//! ```
//!
//! * **Out-of-memory** steps down immediately: the footprint is a
//!   property of the algorithm, so retrying the same level cannot help.
//! * **Transient faults** (kernel panic, watchdog timeout, injected
//!   faults) retry the same level up to
//!   [`ResiliencePolicy::max_transient_retries`] times before stepping
//!   down — a fault plan that fires at one launch ordinal will not fire
//!   again, so the retry usually lands.
//! * **Invalid input** aborts the ladder: no algorithm can cluster NaN.
//! * The sequential oracle never touches the device and cannot fail, so
//!   a valid input always produces a clustering.
//!
//! When the device has a memory budget, a **pre-flight estimate** skips
//! levels whose predicted footprint already exceeds the available
//! budget (recorded as [`AttemptOutcome::Skipped`]) — avoiding the cost
//! of building an index only to fail at the edge-list reservation.
//! Every attempt, skip, and failure is recorded in the returned
//! [`ResilienceReport`].
//!
//! # Checkpointed retries
//!
//! Each device rung runs with a [`PipelineCheckpoint`]: completed phase
//! outputs (index, core flags, labels) survive a mid-run fault in the
//! caller-side checkpoint, so a transient retry *resumes from the last
//! completed phase* instead of recomputing the whole rung. On a
//! step-down (e.g. G-DBSCAN's edge list ooms after its degree pass),
//! reusable artifacts are handed to the next rung: the core flags of
//! the failed level seed the next level's preprocessing phase, since
//! core-point status depends only on `(points, eps, minpts)`, not on
//! the algorithm. The handoff applies only for `minpts > 2` — below
//! that the algorithms skip preprocessing entirely (Algorithm 3,
//! line 2).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use fdbscan_device::snapshot::PipelineCheckpoint;
use fdbscan_device::{Device, DeviceError};
use fdbscan_geom::Point;

use crate::baselines::gdbscan::{gdbscan, gdbscan_run_from, GDBSCAN_ALGORITHM};
use crate::checkpoint::{checkpoint_for, CoreSnapshot, PHASE_CORE_FLAGS, PHASE_PREPROCESS};
use crate::densebox::DENSEBOX_ALGORITHM;
use crate::fdbscan_impl::FDBSCAN_ALGORITHM;
use crate::labels::Clustering;
use crate::seq::dbscan_classic;
use crate::stats::RunStats;
use crate::Params;

/// One rung of the degradation ladder, ordered fastest/most-fragile
/// first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LadderLevel {
    /// G-DBSCAN: `O(edges)` device memory, the paper's OOM case.
    GDbscan,
    /// FDBSCAN-DenseBox: linear memory (grid + mixed-primitive tree).
    DenseBox,
    /// FDBSCAN: linear memory (point tree only), the smallest footprint
    /// of the parallel algorithms.
    Fdbscan,
    /// Sequential host oracle: no device memory at all, cannot fail.
    Sequential,
}

impl LadderLevel {
    /// The next (smaller-footprint) rung, or `None` below the oracle.
    pub fn next(self) -> Option<LadderLevel> {
        match self {
            LadderLevel::GDbscan => Some(LadderLevel::DenseBox),
            LadderLevel::DenseBox => Some(LadderLevel::Fdbscan),
            LadderLevel::Fdbscan => Some(LadderLevel::Sequential),
            LadderLevel::Sequential => None,
        }
    }

    /// The checkpoint algorithm tag of this rung, or `None` for the
    /// host oracle (which has no phases to checkpoint).
    pub fn algorithm(self) -> Option<&'static str> {
        match self {
            LadderLevel::GDbscan => Some(GDBSCAN_ALGORITHM),
            LadderLevel::DenseBox => Some(DENSEBOX_ALGORITHM),
            LadderLevel::Fdbscan => Some(FDBSCAN_ALGORITHM),
            LadderLevel::Sequential => None,
        }
    }
}

impl std::fmt::Display for LadderLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LadderLevel::GDbscan => "G-DBSCAN",
            LadderLevel::DenseBox => "FDBSCAN-DenseBox",
            LadderLevel::Fdbscan => "FDBSCAN",
            LadderLevel::Sequential => "sequential",
        })
    }
}

/// Retry/degradation policy for [`run_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct ResiliencePolicy {
    /// The rung to start from. Defaults to the top ([`LadderLevel::GDbscan`]).
    pub start: LadderLevel,
    /// How many times a *transient* failure (panic, timeout, injected
    /// fault) retries the same level before stepping down. OOM never
    /// retries. Default 2.
    pub max_transient_retries: usize,
    /// Skip levels whose pre-flight memory estimate exceeds the
    /// available budget. Default true; a no-op on unbudgeted devices.
    pub preflight: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self { start: LadderLevel::GDbscan, max_transient_retries: 2, preflight: true }
    }
}

/// What happened to one attempt at one ladder level.
#[derive(Clone, Debug, PartialEq)]
pub enum AttemptOutcome {
    /// The level produced a clustering.
    Succeeded,
    /// The level ran and failed with this error.
    Failed(DeviceError),
    /// The level never ran: its pre-flight estimate exceeded the
    /// available budget.
    Skipped {
        /// Predicted footprint of the level, in bytes.
        estimated_bytes: usize,
        /// Device bytes that were actually available.
        available_bytes: usize,
    },
}

/// One recorded attempt (or pre-flight skip) of a ladder level.
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// The level attempted.
    pub level: LadderLevel,
    /// What happened.
    pub outcome: AttemptOutcome,
}

/// Full history of a [`run_resilient`] call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Every attempt and skip, in order.
    pub attempts: Vec<Attempt>,
    /// The level that finally produced the clustering, if any.
    pub completed: Option<LadderLevel>,
}

impl ResilienceReport {
    /// Number of attempts that actually executed (skips excluded).
    pub fn runs(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| !matches!(a.outcome, AttemptOutcome::Skipped { .. }))
            .count()
    }

    /// True if the clustering came from a lower rung than the first one
    /// tried (i.e. the ladder actually degraded).
    pub fn degraded(&self) -> bool {
        match (self.attempts.first(), self.completed) {
            (Some(first), Some(done)) => first.level != done,
            _ => false,
        }
    }
}

/// Predicted device footprint of FDBSCAN in bytes: points, labels, core
/// flags, and a linear BVH (`n` leaves + `n-1` internal nodes).
pub fn estimate_fdbscan_bytes<const D: usize>(n: usize) -> usize {
    let point = std::mem::size_of::<Point<D>>();
    let aabb = 2 * point;
    let leaves = n * (aabb + 4 + 4); // leaf bounds + payload + position
    let internals = n.saturating_sub(1) * (aabb + 16 + 8); // bounds + children + range
    n * point + n * 4 + n.div_ceil(8) + leaves + internals
}

/// Predicted device footprint of FDBSCAN-DenseBox in bytes: FDBSCAN's
/// structures plus the dense grid (sorted ids, cell table, point→cell
/// map). The mixed-primitive tree is never larger than the point tree.
pub fn estimate_densebox_bytes<const D: usize>(n: usize) -> usize {
    estimate_fdbscan_bytes::<D>(n) + n * 16
}

/// Predicted device footprint of G-DBSCAN in bytes: points, CSR
/// offsets, and the edge lists, with the edge count extrapolated from
/// the average degree of at most 128 evenly-strided sample points
/// (brute force, `O(samples * n)` — cheap next to the graph build it
/// guards).
pub fn estimate_gdbscan_bytes<const D: usize>(points: &[Point<D>], eps: f32) -> usize {
    let n = points.len();
    if n == 0 {
        return 0;
    }
    let samples = n.min(128);
    let stride = n / samples;
    let eps_sq = eps * eps;
    let mut neighbors = 0u64;
    for s in 0..samples {
        let q = &points[s * stride];
        neighbors +=
            points.iter().filter(|p| p.dist_sq(q) <= eps_sq).count().saturating_sub(1) as u64;
    }
    let est_edges = (neighbors as f64 / samples as f64 * n as f64) as usize;
    std::mem::size_of_val(points) + (n + 1) * 8 + est_edges * 4
}

/// Runs DBSCAN with graceful degradation (see the module docs).
///
/// Returns the clustering and stats of the first level that succeeded,
/// plus the full [`ResilienceReport`]. Fails only on invalid input —
/// for anything else the sequential oracle is the backstop.
///
/// ```
/// use fdbscan::{run_resilient, Params, ResiliencePolicy};
/// use fdbscan_device::{Device, DeviceConfig};
/// use fdbscan_geom::Point2;
///
/// // A budget that G-DBSCAN's dense adjacency graph busts.
/// let device = Device::new(DeviceConfig::default().with_memory_budget(1 << 19));
/// let points = vec![Point2::new([0.0, 0.0]); 2000];
/// let (clustering, _stats, report) =
///     run_resilient(&device, &points, Params::new(1.0, 5), ResiliencePolicy::default())
///         .unwrap();
/// assert_eq!(clustering.num_clusters, 1);
/// assert!(report.degraded());
/// ```
pub fn run_resilient<const D: usize>(
    device: &Device,
    points: &[Point<D>],
    params: Params,
    policy: ResiliencePolicy,
) -> Result<(Clustering, RunStats, ResilienceReport), DeviceError> {
    crate::validate_finite(points)?;
    let tracer = device.tracer();
    let _ladder_span = tracer.phase("resilient");
    let mut report = ResilienceReport::default();
    let mut level = Some(policy.start);
    let mut last_err = None;
    // Core flags salvaged from a failed rung, handed down to seed the
    // next rung's preprocessing phase (minpts > 2 only — see module
    // docs).
    let mut handoff: Option<CoreSnapshot> = None;

    while let Some(l) = level {
        // A fired cancel token aborts the ladder before the next rung:
        // a cancelled request must not complete on a lower rung (or the
        // sequential oracle) just because a retry would have landed.
        device.check_cancelled()?;

        // Pre-flight: skip levels that cannot fit. The oracle uses no
        // device memory and is never skipped.
        if policy.preflight && l != LadderLevel::Sequential {
            if let Some(budget) = device.memory().budget() {
                // Arena-held scratch is charged against the budget but
                // reclaimable on demand, so it counts as available; if the
                // rung actually needs those bytes, release them now.
                let unpooled = budget.saturating_sub(device.memory().in_use());
                let available = unpooled + device.arena().held_bytes();
                let estimated = match l {
                    LadderLevel::GDbscan => estimate_gdbscan_bytes(points, params.eps),
                    LadderLevel::DenseBox => estimate_densebox_bytes::<D>(points.len()),
                    LadderLevel::Fdbscan => estimate_fdbscan_bytes::<D>(points.len()),
                    LadderLevel::Sequential => unreachable!(),
                };
                if estimated <= available && estimated > unpooled {
                    let freed = device.arena().trim();
                    tracer.instant(format!("resilient.trim_arena {l}: freed {freed} B"));
                }
                if estimated > available {
                    tracer.instant(format!(
                        "resilient.skip {l}: estimated {estimated} B > available {available} B"
                    ));
                    report.attempts.push(Attempt {
                        level: l,
                        outcome: AttemptOutcome::Skipped {
                            estimated_bytes: estimated,
                            available_bytes: available,
                        },
                    });
                    level = l.next();
                    continue;
                }
            }
        }

        // Each device rung gets a checkpoint; phases completed before a
        // fault survive in it, so retries resume rather than recompute.
        let mut ckpt = l.algorithm().map(|alg| {
            let mut c = checkpoint_for(alg, points, params);
            if params.minpts > 2 {
                if let Some(flags) = handoff.take() {
                    tracer.instant(format!("resilient.handoff {l}: seeded core flags"));
                    c.record(PHASE_PREPROCESS, &flags);
                }
            }
            c
        });

        let mut retries = 0;
        loop {
            match run_level(device, points, params, l, ckpt.as_mut()) {
                Ok((clustering, mut stats)) => {
                    tracer.instant(format!("resilient.complete {l}"));
                    report.attempts.push(Attempt { level: l, outcome: AttemptOutcome::Succeeded });
                    report.completed = Some(l);
                    stats.attempts = report.runs();
                    stats.request_id = device.cancel_token().and_then(|t| t.request_id());
                    return Ok((clustering, stats, report));
                }
                Err(err) => {
                    let transient = matches!(
                        err,
                        DeviceError::KernelPanicked { .. }
                            | DeviceError::KernelTimeout { .. }
                            | DeviceError::FaultInjected { .. }
                    );
                    // Fatal errors abort the ladder outright: no rung
                    // can cluster NaN, and a cancelled or out-of-time
                    // request must stop degrading, not keep going.
                    let fatal = matches!(
                        err,
                        DeviceError::InvalidInput { .. }
                            | DeviceError::Cancelled { .. }
                            | DeviceError::DeadlineExceeded { .. }
                    );
                    report
                        .attempts
                        .push(Attempt { level: l, outcome: AttemptOutcome::Failed(err.clone()) });
                    if fatal {
                        return Err(err);
                    }
                    if transient && retries < policy.max_transient_retries {
                        retries += 1;
                        let done = ckpt.as_ref().map_or(0, PipelineCheckpoint::len);
                        tracer.instant(format!(
                            "resilient.retry {l}: attempt {} ({done} phase(s) checkpointed)",
                            retries + 1
                        ));
                        continue;
                    }
                    if matches!(err, DeviceError::OutOfMemory { .. }) {
                        // A real driver releases its scratch pools when an
                        // allocation fails: hand the arena-held bytes to
                        // the next rung.
                        device.arena().trim();
                    }
                    last_err = Some(err);
                    break;
                }
            }
        }
        // Stepping down: salvage the failed rung's core flags (recorded
        // either as a completed preprocessing phase or, for G-DBSCAN,
        // before its OOM-prone edge-list reservation) for the next rung.
        if params.minpts > 2 {
            if let Some(c) = &ckpt {
                handoff = c
                    .restore::<CoreSnapshot>(PHASE_PREPROCESS)
                    .or_else(|| c.restore::<CoreSnapshot>(PHASE_CORE_FLAGS));
            }
        }
        level = l.next();
        if let Some(next) = level {
            tracer.instant(format!("resilient.degrade {l} -> {next}"));
        }
    }

    Err(last_err.expect("ladder exhausted without running a level"))
}

/// Runs one ladder level, converting panics that escape the algorithm
/// (e.g. from infrastructure kernels still on the infallible API) into
/// [`DeviceError::KernelPanicked`].
fn run_level<const D: usize>(
    device: &Device,
    points: &[Point<D>],
    params: Params,
    level: LadderLevel,
    ckpt: Option<&mut PipelineCheckpoint>,
) -> Result<(Clustering, RunStats), DeviceError> {
    let run = move || match (level, ckpt) {
        (LadderLevel::GDbscan, Some(c)) => gdbscan_run_from(device, points, params, c),
        (LadderLevel::GDbscan, None) => gdbscan(device, points, params),
        (LadderLevel::DenseBox, Some(c)) => {
            crate::fdbscan_densebox_run_from(device, points, params, Default::default(), c)
        }
        (LadderLevel::DenseBox, None) => crate::fdbscan_densebox(device, points, params),
        (LadderLevel::Fdbscan, Some(c)) => {
            crate::fdbscan_run_from(device, points, params, Default::default(), c)
        }
        (LadderLevel::Fdbscan, None) => crate::fdbscan(device, points, params),
        (LadderLevel::Sequential, _) => {
            let start = Instant::now();
            let clustering = dbscan_classic(points, params);
            let stats = RunStats { total_time: start.elapsed(), ..Default::default() };
            Ok((clustering, stats))
        }
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => {
            // An infallible-API kernel on a cancelled device panics with
            // the cancellation message; diagnose it as the cancellation
            // it is, not as a (retryable) kernel panic.
            device.check_cancelled()?;
            let payload = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(DeviceError::KernelPanicked {
                launch: device.launches_started().saturating_sub(1),
                payload,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::assert_core_equivalent;
    use crate::verify::assert_valid_clustering;
    use fdbscan_device::{DeviceConfig, FaultPlan};
    use fdbscan_geom::Point2;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, extent: f32, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new([rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)]))
            .collect()
    }

    #[test]
    fn healthy_device_stays_on_first_level() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let points = random_points(300, 5.0, 41);
        let params = Params::new(0.3, 4);
        let (c, _, report) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::GDbscan));
        assert!(!report.degraded());
        assert_eq!(report.runs(), 1);
        assert_valid_clustering(&points, &c, params);
    }

    #[test]
    fn gdbscan_oom_degrades_to_linear_algorithm() {
        // Dense blob: quadratic edges bust the budget, linear algorithms
        // fit comfortably.
        let points = vec![Point2::new([0.0, 0.0]); 2000];
        let params = Params::new(1.0, 5);
        let device = Device::new(DeviceConfig::default().with_memory_budget(1 << 19));
        let (c, _, report) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert!(report.degraded());
        assert_ne!(report.completed, Some(LadderLevel::GDbscan));
        assert_eq!(c.num_clusters, 1);
        let oracle = dbscan_classic(&points, params);
        assert_core_equivalent(&oracle, &c);
    }

    #[test]
    fn preflight_skips_gdbscan_without_running_it() {
        let points = vec![Point2::new([0.0, 0.0]); 2000];
        let device = Device::new(DeviceConfig::default().with_memory_budget(1 << 19));
        let (_, _, report) =
            run_resilient(&device, &points, Params::new(1.0, 5), ResiliencePolicy::default())
                .unwrap();
        assert!(matches!(
            report.attempts[0],
            Attempt { level: LadderLevel::GDbscan, outcome: AttemptOutcome::Skipped { .. } }
        ));
        // The skip avoided the graph build: no failed G-DBSCAN run.
        assert_eq!(report.runs(), 1);
    }

    #[test]
    fn preflight_counts_arena_held_bytes_as_available() {
        // Arena-pooled scratch is charged against the budget but
        // reclaimable on demand. A rung whose estimate exceeds the
        // unpooled headroom must still run (after a trim) when the
        // pooled bytes cover the gap — not be skipped.
        let points = random_points(2000, 5.0, 43);
        let params = Params::new(0.5, 4);

        // Measure the warm arena footprint on an unbudgeted device.
        let probe = Device::with_defaults();
        crate::fdbscan(&probe, &points, params).unwrap();
        let held = probe.arena().held_bytes();
        assert!(held > 0, "fdbscan leaves no pooled scratch to test with");

        // Budget that fits G-DBSCAN only if the pooled bytes count:
        // estimated <= budget, but estimated > budget - held.
        let estimated = estimate_gdbscan_bytes(&points, params.eps);
        let budget = estimated + held - 1;
        let device = Device::new(DeviceConfig::default().with_memory_budget(budget));
        crate::fdbscan(&device, &points, params).unwrap();
        assert_eq!(device.arena().held_bytes(), held, "warm-up not reproducible");
        assert!(estimated > budget - held, "arena bytes would not matter");

        let (c, _, report) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::GDbscan));
        assert!(!report.degraded(), "rung was skipped despite reclaimable arena bytes");
        let oracle = dbscan_classic(&points, params);
        assert_core_equivalent(&oracle, &c);
    }

    #[test]
    fn transient_panic_retries_same_level() {
        let points = random_points(300, 5.0, 42);
        let params = Params::new(0.3, 4);
        // Panic once at an early launch; the ordinal fires exactly once,
        // so the retry succeeds at the same level.
        let plan = FaultPlan::new(7).with_kernel_panic_at(0, 0);
        let device = Device::new(DeviceConfig::default().with_workers(2).with_fault_plan(plan));
        let (c, _, report) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::GDbscan));
        assert!(!report.degraded());
        assert_eq!(report.runs(), 2, "one failure + one successful retry");
        assert!(matches!(
            report.attempts[0].outcome,
            AttemptOutcome::Failed(DeviceError::KernelPanicked { .. })
        ));
        let oracle = dbscan_classic(&points, params);
        assert_core_equivalent(&oracle, &c);
    }

    #[test]
    fn persistent_oom_falls_through_to_sequential() {
        // Any reservation over 1 byte fails: every device algorithm
        // ooms (or is skipped), only the host oracle survives.
        let points = random_points(200, 3.0, 43);
        let params = Params::new(0.4, 3);
        let plan = FaultPlan::new(8).with_oom_above_bytes(1);
        let device = Device::new(DeviceConfig::default().with_workers(2).with_fault_plan(plan));
        let (c, _, report) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::Sequential));
        assert!(report.degraded());
        let oracle = dbscan_classic(&points, params);
        assert_core_equivalent(&oracle, &c);
        // The device remains usable: all reservations were released.
        assert_eq!(device.memory().in_use(), 0);
    }

    #[test]
    fn invalid_input_aborts_ladder() {
        let points = vec![Point2::new([0.0, f32::NAN])];
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let err = run_resilient(&device, &points, Params::new(0.5, 2), ResiliencePolicy::default())
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidInput { .. }));
    }

    #[test]
    fn custom_start_level() {
        let points = random_points(200, 4.0, 44);
        let params = Params::new(0.4, 4);
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let policy = ResiliencePolicy { start: LadderLevel::Fdbscan, ..Default::default() };
        let (_, _, report) = run_resilient(&device, &points, params, policy).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::Fdbscan));
    }

    #[test]
    fn transient_retry_resumes_from_last_completed_phase() {
        let points = random_points(300, 5.0, 45);
        let params = Params::new(0.3, 4);
        // Probe an uninterrupted run for its launch/distance totals.
        let probe = Device::new(DeviceConfig::sequential());
        crate::fdbscan(&probe, &points, params).unwrap();
        let full = probe.counters().snapshot();
        // Panic at the very last launch (finalize's flatten kernel): by
        // then index, preprocess, and main are all checkpointed, so the
        // retry replays no distance computation at all.
        let plan = FaultPlan::new(9).with_kernel_panic_at(full.kernel_launches - 1, 0);
        let device = Device::new(DeviceConfig::sequential().with_fault_plan(plan));
        let policy = ResiliencePolicy { start: LadderLevel::Fdbscan, ..Default::default() };
        let (c, _, report) = run_resilient(&device, &points, params, policy).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::Fdbscan));
        assert!(!report.degraded());
        assert_eq!(report.runs(), 2, "one failure + one successful retry");
        let total = device.counters().snapshot();
        assert_eq!(
            total.distance_computations, full.distance_computations,
            "checkpointed retry must not recompute any distances"
        );
        assert!(
            total.kernel_launches < 2 * full.kernel_launches,
            "retry replayed the whole pipeline: {} launches vs {} for one run",
            total.kernel_launches,
            full.kernel_launches
        );
        let oracle = dbscan_classic(&points, params);
        assert_core_equivalent(&oracle, &c);
    }

    #[test]
    fn oom_step_down_hands_core_flags_to_next_rung() {
        // A dense blob makes G-DBSCAN's edge list quadratic (ooms under
        // the budget) while the scattered tail keeps FDBSCAN-DenseBox's
        // core counting non-trivial on a fresh run.
        let mut points = vec![Point2::new([0.0, 0.0]); 1200];
        points.extend(random_points(300, 5.0, 46));
        let params = Params::new(0.3, 5);
        // Control: from scratch, DenseBox's fused main kernel computes
        // core-counting distances for the sparse tail.
        let control = Device::new(DeviceConfig::sequential());
        let (_, control_stats) = crate::fdbscan_densebox(&control, &points, params).unwrap();
        assert!(control_stats.phase_counters.main.distance_computations > 0);
        // Disable pre-flight so G-DBSCAN actually runs its degree pass
        // (recording core flags) before the edge reservation ooms.
        let device = Device::new(DeviceConfig::sequential().with_memory_budget(1 << 19));
        let policy = ResiliencePolicy { preflight: false, ..Default::default() };
        let (c, stats, report) = run_resilient(&device, &points, params, policy).unwrap();
        assert!(matches!(
            report.attempts[0].outcome,
            AttemptOutcome::Failed(DeviceError::OutOfMemory { .. })
        ));
        assert_eq!(report.completed, Some(LadderLevel::DenseBox));
        assert!(report.degraded());
        // The salvaged flags pre-decided every point for DenseBox's fused
        // main kernel: the winning rung ran no counting traversals, so it
        // computed strictly fewer main-phase distances than the control.
        assert!(
            stats.phase_counters.main.distance_computations
                < control_stats.phase_counters.main.distance_computations,
            "handed-off core flags should skip core-counting recomputation ({} vs control {})",
            stats.phase_counters.main.distance_computations,
            control_stats.phase_counters.main.distance_computations
        );
        let oracle = dbscan_classic(&points, params);
        assert_core_equivalent(&oracle, &c);
    }

    #[test]
    fn stats_record_attempt_counts() {
        let points = random_points(300, 5.0, 42);
        let params = Params::new(0.3, 4);
        // Clean run: one attempt.
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let (_, stats, _) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(stats.attempts, 1);
        // One injected panic + successful retry: two attempts.
        let plan = FaultPlan::new(7).with_kernel_panic_at(0, 0);
        let device = Device::new(DeviceConfig::default().with_workers(2).with_fault_plan(plan));
        let (_, stats, report) =
            run_resilient(&device, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.attempts, report.runs());
    }

    #[test]
    fn cancelled_request_aborts_ladder_without_degrading() {
        use fdbscan_device::CancelToken;
        let points = random_points(300, 5.0, 47);
        let token = CancelToken::new();
        token.cancel();
        let device = Device::new(DeviceConfig::default().with_workers(2)).with_cancel(token);
        let err = run_resilient(&device, &points, Params::new(0.3, 4), ResiliencePolicy::default())
            .unwrap_err();
        assert!(matches!(err, DeviceError::Cancelled { .. }), "got {err:?}");
        // Nothing ran, nothing leaked; the shared device stays usable.
        assert_eq!(device.memory().in_use(), device.arena().held_bytes());
    }

    #[test]
    fn expired_deadline_stops_the_ladder_not_the_device() {
        use fdbscan_device::CancelToken;
        use std::time::Duration;
        let points = random_points(300, 5.0, 48);
        let params = Params::new(0.3, 4);
        let base = Device::new(DeviceConfig::default().with_workers(2));
        let request =
            base.with_cancel(CancelToken::with_deadline(Instant::now() - Duration::from_millis(1)));
        let err =
            run_resilient(&request, &points, params, ResiliencePolicy::default()).unwrap_err();
        assert!(matches!(err, DeviceError::DeadlineExceeded { .. }), "got {err:?}");
        // A mid-ladder expiry must never fall through to the sequential
        // oracle and "succeed" after its deadline — and the base device
        // (other requests) keeps working.
        let (c, _, report) =
            run_resilient(&base, &points, params, ResiliencePolicy::default()).unwrap();
        assert_eq!(report.completed, Some(LadderLevel::GDbscan));
        assert_valid_clustering(&points, &c, params);
    }

    #[test]
    fn estimates_are_sane() {
        // FDBSCAN's estimate is linear and close to the measured peak.
        let n = 2000;
        let est = estimate_fdbscan_bytes::<2>(n);
        assert!(est > n * 8, "estimate {est} implausibly small");
        assert!(est < n * 200, "estimate {est} implausibly large");
        // The G-DBSCAN estimate on a dense blob is quadratic-ish: far
        // larger than the linear estimate.
        let points = vec![Point2::new([0.0, 0.0]); 2000];
        let g_est = estimate_gdbscan_bytes(&points, 1.0);
        assert!(g_est > 4 * est, "dense-blob graph estimate {g_est} should dwarf {est}");
    }
}
