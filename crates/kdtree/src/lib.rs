#![warn(missing_docs)]

//! k-d tree search index.
//!
//! The paper's §4.1 notes that "while any tree can be used, BVH has been
//! shown to be very efficient for low-dimensional data on GPUs", and
//! §4.2 adds that mixing dense boxes into a k-d tree "would pose more
//! challenges". This crate provides the k-d tree so those claims can be
//! measured (the `ablations` bench compares FDBSCAN over both indexes).
//!
//! Construction is a host-side recursive median split (the very
//! GPU-unfriendliness the paper alludes to); queries expose the same
//! batched interface as the BVH — callback, early termination, and the
//! index-masked traversal — because the median-split layout stores each
//! subtree contiguously, so "hide all leaves with position < cutoff"
//! prunes subtrees exactly like the BVH range mask does.
//!
//! # Example
//!
//! ```
//! use fdbscan_geom::Point2;
//! use fdbscan_kdtree::KdTree;
//!
//! let points = vec![
//!     Point2::new([0.0, 0.0]),
//!     Point2::new([0.3, 0.0]),
//!     Point2::new([7.0, 7.0]),
//! ];
//! let tree = KdTree::build(&points);
//! let mut hits = tree.collect_in_radius(&Point2::new([0.1, 0.0]), 0.5);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 1]);
//! ```

use std::ops::ControlFlow;

use fdbscan_geom::Point;

/// Leaf bucket size: below this, nodes scan points linearly.
const LEAF_SIZE: usize = 8;

/// Per-query traversal statistics (mirrors the BVH's).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KdQueryStats {
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Points whose exact distance was computed.
    pub points_tested: u64,
}

#[derive(Clone, Debug)]
enum Node {
    /// Internal node: split plane and child node indices.
    Internal { axis: u8, split: f32, left: u32, right: u32, end: u32 },
    /// Leaf: a contiguous range of the permuted point array.
    Leaf { begin: u32, end: u32 },
}

/// A k-d tree over a point set, with the same query surface as the BVH.
#[derive(Clone, Debug)]
pub struct KdTree<const D: usize> {
    nodes: Vec<Node>,
    root: u32,
    /// Points permuted into tree order (each subtree contiguous).
    points: Vec<Point<D>>,
    /// `payload[pos]` = original index of the point at tree position `pos`.
    payload: Vec<u32>,
    /// Inverse of `payload`.
    positions: Vec<u32>,
}

impl<const D: usize> KdTree<D> {
    /// Builds the tree (host-side median splits).
    pub fn build(input: &[Point<D>]) -> Self {
        let n = input.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        let root = if n == 0 { 0 } else { build_recursive(input, &mut order, 0, &mut nodes) };
        let points: Vec<Point<D>> = order.iter().map(|&i| input[i as usize]).collect();
        let mut positions = vec![0u32; n];
        for (pos, &id) in order.iter().enumerate() {
            positions[id as usize] = pos as u32;
        }
        Self { nodes, root, points, payload: order, positions }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Original index of the point at tree position `pos`.
    #[inline]
    pub fn leaf_payload(&self, pos: u32) -> u32 {
        self.payload[pos as usize]
    }

    /// Tree position of original point `id`.
    #[inline]
    pub fn leaf_pos_of(&self, id: u32) -> u32 {
        self.positions[id as usize]
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.points.len() * (std::mem::size_of::<Point<D>>() + 8)
    }

    /// Invokes `callback(tree_pos, original_id)` for every point within
    /// `eps` of `center` whose tree position is `>= cutoff`. The callback
    /// may return `Break` to end this query early.
    pub fn for_each_in_radius<F>(
        &self,
        center: &Point<D>,
        eps: f32,
        cutoff: u32,
        mut callback: F,
    ) -> KdQueryStats
    where
        F: FnMut(u32, u32) -> ControlFlow<()>,
    {
        let mut stats = KdQueryStats::default();
        if self.points.is_empty() {
            return stats;
        }
        let eps_sq = eps * eps;
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        stack.push(self.root);
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match &self.nodes[node as usize] {
                Node::Leaf { begin, end } => {
                    let begin = (*begin).max(cutoff);
                    for pos in begin..*end {
                        stats.points_tested += 1;
                        if self.points[pos as usize].dist_sq(center) <= eps_sq
                            && callback(pos, self.payload[pos as usize]).is_break()
                        {
                            return stats;
                        }
                    }
                }
                Node::Internal { axis, split, left, right, end } => {
                    if *end <= cutoff {
                        continue; // whole subtree masked
                    }
                    let delta = center[*axis as usize] - split;
                    // Always search the near side; the far side only if
                    // the ball crosses the plane.
                    let (near, far) = if delta <= 0.0 { (*left, *right) } else { (*right, *left) };
                    if delta * delta <= eps_sq {
                        stack.push(far);
                    }
                    stack.push(near);
                }
            }
        }
        stats
    }

    /// Collects original ids of all points within `eps` (unmasked).
    pub fn collect_in_radius(&self, center: &Point<D>, eps: f32) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_radius(center, eps, 0, |_, id| {
            out.push(id);
            ControlFlow::Continue(())
        });
        out
    }
}

/// Recursively builds the subtree over `order[lo..]`; returns node index.
fn build_recursive<const D: usize>(
    input: &[Point<D>],
    order: &mut [u32],
    offset: u32,
    nodes: &mut Vec<Node>,
) -> u32 {
    let n = order.len();
    if n <= LEAF_SIZE {
        nodes.push(Node::Leaf { begin: offset, end: offset + n as u32 });
        return (nodes.len() - 1) as u32;
    }
    // Widest axis of the bounding box of this subset.
    let mut min = [f32::INFINITY; D];
    let mut max = [f32::NEG_INFINITY; D];
    for &i in order.iter() {
        let p = &input[i as usize];
        for d in 0..D {
            min[d] = min[d].min(p[d]);
            max[d] = max[d].max(p[d]);
        }
    }
    let axis = (0..D)
        .max_by(|&a, &b| (max[a] - min[a]).partial_cmp(&(max[b] - min[b])).unwrap())
        .unwrap_or(0);
    let mid = n / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        input[a as usize][axis]
            .partial_cmp(&input[b as usize][axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let split = input[order[mid] as usize][axis];
    let (left_half, right_half) = order.split_at_mut(mid);
    let left = build_recursive(input, left_half, offset, nodes);
    let right = build_recursive(input, right_half, offset + mid as u32, nodes);
    nodes.push(Node::Internal { axis: axis as u8, split, left, right, end: offset + n as u32 });
    (nodes.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdbscan_geom::Point2;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]))
            .collect()
    }

    fn brute_force(points: &[Point2], center: &Point2, eps: f32) -> Vec<u32> {
        let eps_sq = eps * eps;
        let mut out: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist_sq(center) <= eps_sq)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::<2>::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.collect_in_radius(&Point2::new([0.0, 0.0]), 10.0).is_empty());
    }

    #[test]
    fn payload_is_permutation() {
        let points = random_points(500, 1);
        let tree = KdTree::build(&points);
        for id in 0..500u32 {
            assert_eq!(tree.leaf_payload(tree.leaf_pos_of(id)), id);
        }
    }

    #[test]
    fn query_matches_brute_force() {
        let points = random_points(2000, 2);
        let tree = KdTree::build(&points);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let center = Point2::new([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            let eps = rng.gen_range(0.5..20.0);
            let mut got = tree.collect_in_radius(&center, eps);
            got.sort_unstable();
            assert_eq!(got, brute_force(&points, &center, eps));
        }
    }

    #[test]
    fn masked_query_covers_each_pair_once() {
        let points = random_points(300, 4);
        let tree = KdTree::build(&points);
        let eps = 10.0;
        let mut pairs = std::collections::HashSet::new();
        for id in 0..points.len() as u32 {
            let pos = tree.leaf_pos_of(id);
            tree.for_each_in_radius(&points[id as usize], eps, pos + 1, |_, other| {
                let key = (id.min(other), id.max(other));
                assert!(pairs.insert(key), "pair {key:?} seen twice");
                ControlFlow::Continue(())
            });
        }
        let mut expected = std::collections::HashSet::new();
        for a in 0..points.len() {
            for b in (a + 1)..points.len() {
                if points[a].dist_sq(&points[b]) <= eps * eps {
                    expected.insert((a as u32, b as u32));
                }
            }
        }
        assert_eq!(pairs, expected);
    }

    #[test]
    fn early_termination() {
        let points = vec![Point2::new([0.0, 0.0]); 100];
        let tree = KdTree::build(&points);
        let mut count = 0;
        tree.for_each_in_radius(&Point2::new([0.0, 0.0]), 1.0, 0, |_, _| {
            count += 1;
            if count >= 7 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(count, 7);
    }

    #[test]
    fn duplicates_and_collinear() {
        let mut points = vec![Point2::new([5.0, 5.0]); 50];
        points.extend((0..50).map(|i| Point2::new([i as f32, 0.0])));
        let tree = KdTree::build(&points);
        let hits = tree.collect_in_radius(&Point2::new([5.0, 5.0]), 0.1);
        assert_eq!(hits.len(), 50);
        let hits = tree.collect_in_radius(&Point2::new([25.0, 0.0]), 2.0);
        assert_eq!(hits.len(), 5); // 23, 24, 25, 26, 27
    }

    #[test]
    fn pruning_reduces_visits() {
        let points = random_points(4000, 9);
        let tree = KdTree::build(&points);
        let small = tree.for_each_in_radius(&Point2::new([50.0, 50.0]), 0.5, 0, |_, _| {
            ControlFlow::Continue(())
        });
        let large = tree.for_each_in_radius(&Point2::new([50.0, 50.0]), 80.0, 0, |_, _| {
            ControlFlow::Continue(())
        });
        assert!(small.nodes_visited < large.nodes_visited);
        assert!(small.points_tested < points.len() as u64 / 4, "no pruning happened");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn kd_query_equals_brute_force(
            seed in any::<u64>(),
            n in 1usize..400,
            eps in 0.1f32..40.0,
            cx in 0.0f32..100.0,
            cy in 0.0f32..100.0,
        ) {
            let points = random_points(n, seed);
            let tree = KdTree::build(&points);
            let center = Point2::new([cx, cy]);
            let mut got = tree.collect_in_radius(&center, eps);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force(&points, &center, eps));
        }

        #[test]
        fn kd_masked_equals_filtered_brute_force(
            seed in any::<u64>(),
            n in 2usize..300,
            eps in 0.1f32..30.0,
            query in 0usize..300,
        ) {
            let query = query % n;
            let points = random_points(n, seed);
            let tree = KdTree::build(&points);
            let pos = tree.leaf_pos_of(query as u32);
            let mut got = Vec::new();
            tree.for_each_in_radius(&points[query], eps, pos + 1, |_, id| {
                got.push(id);
                ControlFlow::Continue(())
            });
            got.sort_unstable();
            let mut expected: Vec<u32> = brute_force(&points, &points[query], eps)
                .into_iter()
                .filter(|&other| tree.leaf_pos_of(other) > pos)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
