#![warn(missing_docs)]

//! Dense-cell grid for FDBSCAN-DenseBox (paper §4.2).
//!
//! A regular Cartesian grid with cell edge `eps / sqrt(d)` is superimposed
//! over the data, guaranteeing each cell's diameter is at most `eps`, so
//! any cell holding at least `minpts` points consists entirely of core
//! points of one cluster (a *dense cell*, Fig. 2).
//!
//! The grid is never materialized as a dense array — the paper's 3-D
//! problem has 3.5 **billion** cells of which only 28 million are
//! non-empty. Instead, points are sorted by cell key and non-empty cells
//! are the segments of the sorted order:
//!
//! 1. radix-sort `(cell key, point id)` — the 64-bit Morton cell keys
//!    are generated on the fly inside the sort's first pass, and the
//!    fused scatter epilogue writes the sorted directory arrays directly,
//! 2. derive the directory in one batched launch: mark segment heads,
//!    scan the marks to number the non-empty cells, record each cell's
//!    start offset, and classify cells with `count >= minpts` as dense.
//!
//! Together with the scene-bounds and dense-census reductions the whole
//! build is four kernel launches, and its scratch is checked out of the
//! device's [`fdbscan_device::BufferArena`] so repeated builds reuse it.
//!
//! [`DenseGrid::mixed_primitives`] then produces the primitive set of the
//! FDBSCAN-DenseBox tree: one box per dense cell plus every point outside
//! dense cells.
//!
//! # Example
//!
//! ```
//! use fdbscan_device::Device;
//! use fdbscan_geom::Point2;
//! use fdbscan_grid::DenseGrid;
//!
//! let device = Device::with_defaults();
//! // Ten stacked points and one straggler.
//! let mut points = vec![Point2::new([1.0, 1.0]); 10];
//! points.push(Point2::new([5.0, 5.0]));
//!
//! let grid = DenseGrid::build(&device, &points, 0.5, 5);
//! assert_eq!(grid.num_cells(), 2);
//! assert_eq!(grid.num_dense_cells(), 1);
//! assert!(grid.point_in_dense_cell(0));
//! assert!(!grid.point_in_dense_cell(10));
//!
//! let mixed = grid.mixed_primitives(&points);
//! assert_eq!(mixed.refs.len(), 2); // one box + one isolated point
//! ```

use fdbscan_device::json::Json;
use fdbscan_device::shared::SharedMut;
use fdbscan_device::{BatchStage, BufferArena, Device, DeviceError};
use fdbscan_geom::{morton, Aabb, Point};
use fdbscan_psort::sort_by_key_fused;

/// High bit of a [`PrimitiveRef`] marks a dense-cell box.
pub const CELL_FLAG: u32 = 1 << 31;

/// Reference to a mixed primitive: either an isolated point (payload =
/// point id) or a dense cell (payload = non-empty-cell index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct PrimitiveRef(pub u32);

impl PrimitiveRef {
    /// A point primitive carrying the original point id.
    #[inline]
    pub fn point(id: u32) -> Self {
        debug_assert!(id & CELL_FLAG == 0);
        Self(id)
    }

    /// A dense-cell primitive carrying the non-empty-cell index.
    #[inline]
    pub fn cell(index: u32) -> Self {
        debug_assert!(index & CELL_FLAG == 0);
        Self(index | CELL_FLAG)
    }

    /// Whether this is a dense-cell box.
    #[inline]
    pub fn is_cell(self) -> bool {
        self.0 & CELL_FLAG != 0
    }

    /// The payload (point id or cell index).
    #[inline]
    pub fn index(self) -> u32 {
        self.0 & !CELL_FLAG
    }
}

/// The mixed primitive set FDBSCAN-DenseBox builds its BVH from.
#[derive(Clone, Debug)]
pub struct MixedPrimitives<const D: usize> {
    /// Bounding volume of each primitive.
    pub bounds: Vec<Aabb<D>>,
    /// What each primitive is.
    pub refs: Vec<PrimitiveRef>,
}

/// A sparse dense-cell grid over a point set.
#[derive(Clone, Debug)]
pub struct DenseGrid<const D: usize> {
    /// Cell edge length (`eps / sqrt(D)`).
    cell_len: f32,
    /// Grid origin (scene minimum corner).
    origin: Point<D>,
    /// Point ids grouped by cell (cell segments are contiguous).
    sorted_ids: Vec<u32>,
    /// Segment start of non-empty cell `c` in `sorted_ids`
    /// (`len = num_cells + 1`; the last entry is `n`).
    cell_starts: Vec<u32>,
    /// Sorted cell key of each non-empty cell.
    cell_keys: Vec<u64>,
    /// Non-empty-cell index of every point (indexed by point id).
    point_cell: Vec<u32>,
    /// Whether each non-empty cell is dense (`count >= minpts`).
    dense: Vec<bool>,
    /// Number of dense cells.
    num_dense: usize,
    /// Number of points living in dense cells.
    points_in_dense: usize,
    /// The minpts threshold the grid was classified with.
    minpts: usize,
}

impl<const D: usize> DenseGrid<D> {
    /// Builds the grid with the paper's cell edge `eps / sqrt(D)` (so each
    /// cell's diameter is at most `eps`). `eps` must be positive and
    /// finite; `minpts >= 1`.
    pub fn build(device: &Device, points: &[Point<D>], eps: f32, minpts: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive and finite");
        Self::build_with_cell_len(device, points, eps / (D as f32).sqrt(), minpts)
    }

    /// [`DenseGrid::build`] with scratch checked out of an explicit
    /// [`BufferArena`] and device errors propagated instead of panicking.
    pub fn build_in(
        device: &Device,
        arena: &BufferArena,
        points: &[Point<D>],
        eps: f32,
        minpts: usize,
    ) -> Result<Self, DeviceError> {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive and finite");
        Self::build_with_cell_len_in(device, arena, points, eps / (D as f32).sqrt(), minpts)
    }

    /// Builds the grid with an explicit cell edge length. Used by
    /// CUDA-DClust's directory index, which wants `cell_len == eps` so a
    /// point's neighbors all live in the 3^D surrounding cells. Note that
    /// dense classification (`is_dense`) is only meaningful when the cell
    /// diameter is at most `eps` — directory users should pass a `minpts`
    /// that disables it (e.g. `usize::MAX`).
    pub fn build_with_cell_len(
        device: &Device,
        points: &[Point<D>],
        cell_len: f32,
        minpts: usize,
    ) -> Self {
        match Self::build_with_cell_len_in(device, device.arena(), points, cell_len, minpts) {
            Ok(grid) => grid,
            Err(error) => panic!("grid build failed: {error}"),
        }
    }

    /// [`DenseGrid::build_with_cell_len`] with scratch checked out of an
    /// explicit [`BufferArena`] and device errors propagated.
    ///
    /// The whole directory is produced in four launches:
    /// 1. `grid.scene_bounds` — reduction fixing the origin,
    /// 2. one fused sort batch — cell keys are generated on the fly
    ///    inside the first radix pass and the fused scatter epilogue
    ///    writes the sorted `(key, id)` arrays directly (no standalone
    ///    key kernel, no post-sort permute),
    /// 3. `grid.directory` — head flags, cell scan, segment offsets and
    ///    dense classification as stages of one batched launch,
    /// 4. `grid.dense_census` — reduction counting dense cells/points.
    ///
    /// # Errors
    /// Propagates [`DeviceError`] from scratch allocation (budget
    /// exhaustion or injected faults) and from the device launches.
    pub fn build_with_cell_len_in(
        device: &Device,
        arena: &BufferArena,
        points: &[Point<D>],
        cell_len: f32,
        minpts: usize,
    ) -> Result<Self, DeviceError> {
        assert!(cell_len > 0.0 && cell_len.is_finite(), "eps must be positive and finite");
        assert!(minpts >= 1, "minpts must be at least 1");
        let n = points.len();

        if n == 0 {
            return Ok(Self {
                cell_len,
                origin: Point::origin(),
                sorted_ids: Vec::new(),
                cell_starts: vec![0],
                cell_keys: Vec::new(),
                point_cell: Vec::new(),
                dense: Vec::new(),
                num_dense: 0,
                points_in_dense: 0,
                minpts,
            });
        }

        // Scene bounds (reduction) fix the grid origin.
        let scene = device.try_reduce_named(
            "grid.scene_bounds",
            n,
            Aabb::empty(),
            |i| Aabb::from_point(points[i]),
            |a, b| a.merged(&b),
        )?;
        let origin = scene.min;

        // Grid resolution sanity: Morton keys give `bits_per_axis(D)` bits
        // per axis. With f32 coordinates the extent/cell ratio cannot
        // meaningfully exceed 2^24, so this only rejects degenerate
        // configurations (eps smaller than coordinate ulps). The per-axis
        // cell counts also bound the interleaved key width, which caps the
        // radix passes the fused sort runs.
        let bits = morton::bits_per_axis(D);
        let mut axis_bits = 1u32;
        for axis in 0..D {
            let extent = scene.max[axis] - scene.min[axis];
            let cells = (extent / cell_len).ceil() as u64 + 1;
            assert!(
                cells < (1u64 << bits),
                "grid axis {axis} needs {cells} cells, exceeding the {bits}-bit key range; \
                 eps is too small relative to the data extent"
            );
            axis_bits = axis_bits.max(64 - (cells - 1).leading_zeros());
        }
        let key_bits = (axis_bits * D as u32).min(64);

        // 1. Sort point ids by cell key. Keys are generated inside the
        //    sort itself; its fused epilogue delivers the sorted order
        //    straight into the directory arrays.
        let mut sorted_ids = vec![0u32; n];
        let mut sorted_keys = arena.take::<u64>(n)?;
        {
            let ids_view = SharedMut::new(&mut sorted_ids);
            let keys_view = SharedMut::new(&mut sorted_keys[..]);
            let origin_ref = &origin;
            sort_by_key_fused(
                device,
                arena,
                n,
                key_bits,
                |i| cell_key::<D>(&points[i], origin_ref, cell_len),
                // SAFETY: the sort emits each destination rank exactly once.
                |pos, key, id| unsafe {
                    keys_view.write(pos, key);
                    ids_view.write(pos, id);
                },
            )?;
        }

        // 2. Derive the directory from the sorted order in one batched
        //    launch: head flags -> cell scan -> segment offsets -> dense
        //    classification. The number of non-empty cells is only known
        //    after the in-batch scan, so cell-indexed arrays are sized at
        //    the worst case (n cells) and truncated afterwards.
        let mut head = arena.take::<u64>(n)?;
        let mut total_slot = arena.take::<u64>(1)?;
        let mut cell_starts = vec![0u32; n + 1];
        let mut cell_keys = vec![0u64; n];
        let mut point_cell = vec![0u32; n];
        let mut dense = vec![false; n];
        {
            let head_view = SharedMut::new(&mut head[..]);
            let total_view = SharedMut::new(&mut total_slot[..]);
            let starts_view = SharedMut::new(&mut cell_starts);
            let keys_out_view = SharedMut::new(&mut cell_keys);
            let point_cell_view = SharedMut::new(&mut point_cell);
            let dense_view = SharedMut::new(&mut dense);
            let (head_view, total_view) = (&head_view, &total_view);
            let (starts_view, keys_out_view) = (&starts_view, &keys_out_view);
            let (point_cell_view, dense_view) = (&point_cell_view, &dense_view);
            let keys_ref: &[u64] = &sorted_keys;
            let ids_ref: &[u32] = &sorted_ids;
            device.try_batch_named(
                "grid.directory",
                vec![
                    BatchStage::new("grid.head_flags", n, move |i| {
                        let is_head = i == 0 || keys_ref[i] != keys_ref[i - 1];
                        // SAFETY: one writer per index.
                        unsafe { head_view.write(i, is_head as u64) };
                    }),
                    // Single-thread exclusive scan of the head flags (a
                    // block-parallel scan is not worth a standalone launch
                    // here); afterwards each head position holds its cell
                    // index and the total is the non-empty cell count.
                    BatchStage::new("grid.cell_scan", 1, move |_| {
                        let mut acc = 0u64;
                        for i in 0..n {
                            // SAFETY: the only thread of this stage.
                            unsafe {
                                let flag = head_view.read(i);
                                head_view.write(i, acc);
                                acc += flag;
                            }
                        }
                        unsafe { total_view.write(0, acc) };
                    }),
                    BatchStage::new("grid.segment", n, move |i| {
                        // After the exclusive scan, position i holds the
                        // number of heads strictly before i: for a head that
                        // is its own cell index; for an interior position it
                        // also counts the segment's own head, hence the -1.
                        let is_head = i == 0 || keys_ref[i] != keys_ref[i - 1];
                        // SAFETY: heads write disjoint cells; every i owns
                        // point_cell[ids[i]] because ids is a permutation;
                        // thread 0 alone writes the sentinel start.
                        unsafe {
                            let cell =
                                (if is_head { head_view.read(i) } else { head_view.read(i) - 1 })
                                    as u32;
                            if is_head {
                                starts_view.write(cell as usize, i as u32);
                                keys_out_view.write(cell as usize, keys_ref[i]);
                            }
                            if i == 0 {
                                starts_view.write(total_view.read(0) as usize, n as u32);
                            }
                            point_cell_view.write(ids_ref[i] as usize, cell);
                        }
                    }),
                    // One thread per potential cell; threads past the scan
                    // total exit immediately.
                    BatchStage::new("grid.dense_flags", n, move |c| {
                        // SAFETY: one writer per cell.
                        unsafe {
                            if c >= total_view.read(0) as usize {
                                return;
                            }
                            let count = (starts_view.read(c + 1) - starts_view.read(c)) as usize;
                            dense_view.write(c, count >= minpts);
                        }
                    }),
                ],
            )?;
        }
        let num_cells = total_slot[0] as usize;
        cell_starts.truncate(num_cells + 1);
        cell_keys.truncate(num_cells);
        dense.truncate(num_cells);

        // 3. Dense census.
        let (num_dense, points_in_dense) = {
            let starts_ref = &cell_starts;
            let dense_ref = &dense;
            device.try_reduce_named(
                "grid.dense_census",
                num_cells,
                (0usize, 0usize),
                |c| {
                    if dense_ref[c] {
                        (1, (starts_ref[c + 1] - starts_ref[c]) as usize)
                    } else {
                        (0, 0)
                    }
                },
                |a, b| (a.0 + b.0, a.1 + b.1),
            )?
        };

        Ok(Self {
            cell_len,
            origin,
            sorted_ids,
            cell_starts,
            cell_keys,
            point_cell,
            dense,
            num_dense,
            points_in_dense,
            minpts,
        })
    }

    /// Cell edge length.
    pub fn cell_len(&self) -> f32 {
        self.cell_len
    }

    /// The grid origin (scene minimum corner).
    pub fn origin(&self) -> Point<D> {
        self.origin
    }

    /// Integer cell coordinates of a point.
    pub fn coords_of_point(&self, p: &Point<D>) -> [u64; D] {
        let mut coords = [0u64; D];
        for axis in 0..D {
            let offset = (p[axis] - self.origin[axis]).max(0.0);
            coords[axis] = (offset / self.cell_len) as u64;
        }
        coords
    }

    /// Looks up the non-empty-cell index at integer coordinates, if that
    /// cell holds any points (binary search over sorted cell keys).
    pub fn find_cell(&self, coords: [u64; D]) -> Option<u32> {
        let key = morton::interleave(coords);
        self.cell_keys.binary_search(&key).ok().map(|i| i as u32)
    }

    /// The minpts threshold used for dense classification.
    pub fn minpts(&self) -> usize {
        self.minpts
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cell_keys.len()
    }

    /// Number of dense cells.
    pub fn num_dense_cells(&self) -> usize {
        self.num_dense
    }

    /// Number of points living in dense cells.
    pub fn points_in_dense_cells(&self) -> usize {
        self.points_in_dense
    }

    /// Fraction of all points living in dense cells (0 for empty input).
    pub fn dense_fraction(&self) -> f64 {
        if self.sorted_ids.is_empty() {
            0.0
        } else {
            self.points_in_dense as f64 / self.sorted_ids.len() as f64
        }
    }

    /// Non-empty-cell index containing point `id`.
    #[inline]
    pub fn cell_of_point(&self, id: u32) -> u32 {
        self.point_cell[id as usize]
    }

    /// Whether non-empty cell `c` is dense.
    #[inline]
    pub fn is_dense(&self, c: u32) -> bool {
        self.dense[c as usize]
    }

    /// Whether point `id` lives in a dense cell.
    #[inline]
    pub fn point_in_dense_cell(&self, id: u32) -> bool {
        self.dense[self.point_cell[id as usize] as usize]
    }

    /// The point ids of non-empty cell `c` (a contiguous slice).
    #[inline]
    pub fn cell_members(&self, c: u32) -> &[u32] {
        let c = c as usize;
        let start = self.cell_starts[c] as usize;
        let end = self.cell_starts[c + 1] as usize;
        &self.sorted_ids[start..end]
    }

    /// The geometric box of non-empty cell `c`.
    ///
    /// Recovered from the cell key, so it is the exact grid-aligned cell,
    /// independent of which points it holds.
    pub fn cell_aabb(&self, c: u32) -> Aabb<D> {
        let key = self.cell_keys[c as usize];
        let coords = deinterleave::<D>(key);
        let mut min = [0.0f32; D];
        let mut max = [0.0f32; D];
        for axis in 0..D {
            min[axis] = self.origin[axis] + coords[axis] as f32 * self.cell_len;
            max[axis] = min[axis] + self.cell_len;
        }
        Aabb::from_corners(Point::new(min), Point::new(max))
    }

    /// Builds the mixed primitive set for the FDBSCAN-DenseBox tree: one
    /// box per dense cell, plus one point primitive per point outside any
    /// dense cell (paper Fig. 2, right).
    ///
    /// Dense cells are bounded by the *tight* bounding box of their
    /// members rather than the full grid cell: semantically identical
    /// (still diameter <= eps) but it prunes queries that would only
    /// graze an empty corner of the cell, sparing the linear member scan.
    pub fn mixed_primitives(&self, points: &[Point<D>]) -> MixedPrimitives<D> {
        let mut bounds = Vec::new();
        let mut refs = Vec::new();
        for c in 0..self.num_cells() as u32 {
            if self.is_dense(c) {
                let tight =
                    Aabb::from_points(self.cell_members(c).iter().map(|&id| &points[id as usize]));
                bounds.push(tight);
                refs.push(PrimitiveRef::cell(c));
            } else {
                for &id in self.cell_members(c) {
                    bounds.push(Aabb::from_point(points[id as usize]));
                    refs.push(PrimitiveRef::point(id));
                }
            }
        }
        MixedPrimitives { bounds, refs }
    }

    /// Approximate device-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sorted_ids.len() * 4
            + self.cell_starts.len() * 4
            + self.cell_keys.len() * 8
            + self.point_cell.len() * 4
            + self.dense.len()
    }
}

/// A built grid checkpoints as its flat directory arrays — cell edge
/// length and origin as exact `f32` bit patterns, plus the sorted-id /
/// cell-start / key / density arrays. Restoring skips the entire sort
/// and classification pipeline.
impl<const D: usize> fdbscan_device::Checkpointable for DenseGrid<D> {
    const KIND: &'static str = "grid.dense";

    fn to_snapshot(&self) -> Json {
        use fdbscan_device::snapshot as snap;
        Json::obj([
            ("dims", Json::U64(D as u64)),
            ("cell_len", Json::U64(self.cell_len.to_bits() as u64)),
            ("origin", snap::f32s_to_json(&self.origin.coords)),
            ("sorted_ids", snap::u32s_to_json(&self.sorted_ids)),
            ("cell_starts", snap::u32s_to_json(&self.cell_starts)),
            ("cell_keys", snap::u64s_to_json(&self.cell_keys)),
            ("point_cell", snap::u32s_to_json(&self.point_cell)),
            ("dense", snap::bools_to_json(&self.dense)),
            ("num_dense", Json::U64(self.num_dense as u64)),
            ("points_in_dense", Json::U64(self.points_in_dense as u64)),
            ("minpts", Json::U64(self.minpts as u64)),
        ])
    }

    fn from_snapshot(snapshot: &Json) -> Result<Self, fdbscan_device::SnapshotError> {
        use fdbscan_device::snapshot as snap;
        use fdbscan_device::SnapshotError;
        let dims = snap::req_u64(snapshot, "dims")?;
        if dims != D as u64 {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot is {dims}-dimensional, expected {D}"
            )));
        }
        let cell_len_bits = snap::req_u64(snapshot, "cell_len")?;
        let origin_coords = snap::json_to_f32s(snap::req_field(snapshot, "origin")?)?;
        if cell_len_bits > u32::MAX as u64 || origin_coords.len() != D {
            return Err(SnapshotError::Corrupt("bad grid geometry fields".to_string()));
        }
        let mut origin = Point::new([0.0; D]);
        origin.coords.copy_from_slice(&origin_coords);
        let sorted_ids = snap::json_to_u32s(snap::req_field(snapshot, "sorted_ids")?)?;
        let cell_starts = snap::json_to_u32s(snap::req_field(snapshot, "cell_starts")?)?;
        let cell_keys = snap::json_to_u64s(snap::req_field(snapshot, "cell_keys")?)?;
        let point_cell = snap::json_to_u32s(snap::req_field(snapshot, "point_cell")?)?;
        let dense = snap::json_to_bools(snap::req_field(snapshot, "dense")?)?;
        if cell_starts.len() != cell_keys.len() + 1
            || dense.len() != cell_keys.len()
            || point_cell.len() != sorted_ids.len()
            || cell_starts.last().copied() != Some(sorted_ids.len() as u32)
        {
            return Err(SnapshotError::Corrupt(
                "grid snapshot arrays have inconsistent lengths".to_string(),
            ));
        }
        Ok(Self {
            cell_len: f32::from_bits(cell_len_bits as u32),
            origin,
            sorted_ids,
            cell_starts,
            cell_keys,
            point_cell,
            dense,
            num_dense: snap::req_u64(snapshot, "num_dense")? as usize,
            points_in_dense: snap::req_u64(snapshot, "points_in_dense")? as usize,
            minpts: snap::req_u64(snapshot, "minpts")? as usize,
        })
    }
}

/// Morton cell key of a point.
#[inline]
fn cell_key<const D: usize>(p: &Point<D>, origin: &Point<D>, cell_len: f32) -> u64 {
    let mut coords = [0u64; D];
    for axis in 0..D {
        // Points on the max boundary land in the last cell; offsets are
        // nonnegative by construction (origin = scene min).
        let offset = (p[axis] - origin[axis]).max(0.0);
        coords[axis] = (offset / cell_len) as u64;
    }
    morton::interleave(coords)
}

/// Inverse of [`fdbscan_geom::morton::interleave`] (per-axis extraction).
fn deinterleave<const D: usize>(key: u64) -> [u64; D] {
    let bits = morton::bits_per_axis(D);
    let mut coords = [0u64; D];
    for b in 0..bits {
        for (axis, coord) in coords.iter_mut().enumerate() {
            let bit = (key >> (b as usize * D + axis)) & 1;
            *coord |= bit << b;
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdbscan_device::DeviceConfig;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn device() -> Device {
        Device::new(DeviceConfig::default().with_workers(2))
    }

    #[test]
    fn primitive_ref_round_trip() {
        let p = PrimitiveRef::point(42);
        assert!(!p.is_cell());
        assert_eq!(p.index(), 42);
        let c = PrimitiveRef::cell(7);
        assert!(c.is_cell());
        assert_eq!(c.index(), 7);
    }

    #[test]
    fn deinterleave_inverts_interleave() {
        for coords in [[0u64, 0], [1, 0], [0, 1], [123, 456], [100_000, 99_999]] {
            let key = morton::interleave(coords);
            assert_eq!(deinterleave::<2>(key), coords);
        }
        for coords in [[0u64, 0, 0], [1, 2, 3], [1000, 2000, 3000]] {
            let key = morton::interleave(coords);
            assert_eq!(deinterleave::<3>(key), coords);
        }
    }

    #[test]
    fn empty_grid() {
        let grid = DenseGrid::<2>::build(&device(), &[], 1.0, 5);
        assert_eq!(grid.num_cells(), 0);
        assert_eq!(grid.num_dense_cells(), 0);
        assert_eq!(grid.dense_fraction(), 0.0);
    }

    #[test]
    fn single_point() {
        let points = [Point::new([3.0, 4.0])];
        let grid = DenseGrid::build(&device(), &points, 1.0, 1);
        assert_eq!(grid.num_cells(), 1);
        // minpts = 1: the lone point makes its cell dense.
        assert_eq!(grid.num_dense_cells(), 1);
        assert_eq!(grid.points_in_dense_cells(), 1);
        assert_eq!(grid.cell_members(0), &[0]);
    }

    #[test]
    fn cell_diameter_at_most_eps() {
        let eps = 0.7;
        let grid = DenseGrid::<3>::build(&device(), &[Point::new([0.0, 0.0, 0.0])], eps, 2);
        let diag = grid.cell_aabb(0).diagonal();
        assert!(diag <= eps * 1.0001, "cell diagonal {diag} exceeds eps {eps}");
    }

    #[test]
    fn clustered_points_share_cell_and_become_dense() {
        // 10 points tightly packed plus 1 far away, minpts = 5.
        let mut points: Vec<Point<2>> =
            (0..10).map(|i| Point::new([0.01 * i as f32, 0.0])).collect();
        points.push(Point::new([100.0, 100.0]));
        let grid = DenseGrid::build(&device(), &points, 1.0, 5);
        assert!(grid.num_cells() >= 2);
        assert_eq!(grid.num_dense_cells(), 1);
        assert_eq!(grid.points_in_dense_cells(), 10);
        assert!(grid.point_in_dense_cell(0));
        assert!(!grid.point_in_dense_cell(10));
    }

    #[test]
    fn cell_members_partition_points() {
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Point<2>> = (0..2000)
            .map(|_| Point::new([rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        let grid = DenseGrid::build(&device(), &points, 0.5, 4);
        let mut seen = vec![false; points.len()];
        for c in 0..grid.num_cells() as u32 {
            for &id in grid.cell_members(c) {
                assert!(!seen[id as usize], "point {id} in two cells");
                seen[id as usize] = true;
                assert_eq!(grid.cell_of_point(id), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn snapshot_round_trips_full_directory() {
        use fdbscan_device::Checkpointable;
        let mut rng = StdRng::seed_from_u64(17);
        let points: Vec<Point<2>> = (0..800)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let grid = DenseGrid::build(&device(), &points, 0.3, 4);
        let restored = DenseGrid::<2>::from_snapshot(&grid.to_snapshot()).unwrap();
        assert_eq!(restored.to_snapshot(), grid.to_snapshot());
        assert_eq!(restored.num_cells(), grid.num_cells());
        assert_eq!(restored.num_dense_cells(), grid.num_dense_cells());
        assert_eq!(restored.minpts(), grid.minpts());
        for id in 0..points.len() as u32 {
            assert_eq!(restored.cell_of_point(id), grid.cell_of_point(id));
            assert_eq!(restored.point_in_dense_cell(id), grid.point_in_dense_cell(id));
        }
        // Wrong dimension and inconsistent arrays are rejected.
        assert!(DenseGrid::<3>::from_snapshot(&grid.to_snapshot()).is_err());
        let mut broken = grid.to_snapshot();
        if let Json::Obj(map) = &mut broken {
            map.insert("sorted_ids".to_string(), Json::Arr(vec![]));
        }
        assert!(DenseGrid::<2>::from_snapshot(&broken).is_err());
    }

    #[test]
    fn members_lie_inside_cell_box() {
        let mut rng = StdRng::seed_from_u64(8);
        let points: Vec<Point<2>> = (0..500)
            .map(|_| Point::new([rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]))
            .collect();
        let grid = DenseGrid::build(&device(), &points, 0.8, 3);
        for c in 0..grid.num_cells() as u32 {
            let cell_box = grid.cell_aabb(c);
            for &id in grid.cell_members(c) {
                let p = points[id as usize];
                // Allow boundary slack of one ulp-ish epsilon.
                assert!(
                    cell_box.dist_sq(&p) < 1e-8,
                    "point {p:?} outside its cell box {cell_box:?}"
                );
            }
        }
    }

    #[test]
    fn dense_classification_matches_counts() {
        let mut rng = StdRng::seed_from_u64(13);
        let points: Vec<Point<2>> = (0..1000)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let minpts = 6;
        let grid = DenseGrid::build(&device(), &points, 1.0, minpts);
        let mut dense_points = 0;
        let mut dense_cells = 0;
        for c in 0..grid.num_cells() as u32 {
            let count = grid.cell_members(c).len();
            assert_eq!(grid.is_dense(c), count >= minpts);
            if count >= minpts {
                dense_cells += 1;
                dense_points += count;
            }
        }
        assert_eq!(grid.num_dense_cells(), dense_cells);
        assert_eq!(grid.points_in_dense_cells(), dense_points);
    }

    #[test]
    fn mixed_primitives_cover_everything_once() {
        let mut rng = StdRng::seed_from_u64(21);
        let points: Vec<Point<2>> = (0..800)
            .map(|_| Point::new([rng.gen_range(0.0..3.0), rng.gen_range(0.0..3.0)]))
            .collect();
        let grid = DenseGrid::build(&device(), &points, 0.9, 10);
        let mixed = grid.mixed_primitives(&points);
        assert_eq!(mixed.bounds.len(), mixed.refs.len());

        let mut covered = vec![false; points.len()];
        for r in &mixed.refs {
            if r.is_cell() {
                assert!(grid.is_dense(r.index()));
                for &id in grid.cell_members(r.index()) {
                    assert!(!covered[id as usize]);
                    covered[id as usize] = true;
                }
            } else {
                let id = r.index() as usize;
                assert!(!covered[id]);
                assert!(!grid.point_in_dense_cell(r.index()));
                covered[id] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_rejected() {
        DenseGrid::<2>::build(&device(), &[Point::new([0.0, 0.0])], 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "minpts must be at least 1")]
    fn zero_minpts_rejected() {
        DenseGrid::<2>::build(&device(), &[Point::new([0.0, 0.0])], 1.0, 0);
    }

    #[test]
    fn build_is_four_launches() {
        // Fused pipeline: scene reduce + batched sort + directory batch +
        // dense census, regardless of worker count.
        let mut rng = StdRng::seed_from_u64(31);
        let points: Vec<Point<2>> = (0..4096)
            .map(|_| Point::new([rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        for workers in [1usize, 3] {
            let device = Device::new(DeviceConfig::default().with_workers(workers));
            let before = device.counters().snapshot().kernel_launches;
            let grid = DenseGrid::build(&device, &points, 0.5, 4);
            assert!(grid.num_cells() > 0);
            let launches = device.counters().snapshot().kernel_launches - before;
            assert_eq!(launches, 4, "workers = {workers}");
        }
    }

    #[test]
    fn repeated_builds_reuse_arena_scratch() {
        let device = device();
        let mut rng = StdRng::seed_from_u64(32);
        let points: Vec<Point<2>> = (0..3000)
            .map(|_| Point::new([rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)]))
            .collect();
        for round in 0..3 {
            let fresh_before = device.memory().reservations_made();
            let grid = DenseGrid::build_in(&device, device.arena(), &points, 0.4, 5).unwrap();
            assert!(grid.num_cells() > 1);
            let fresh = device.memory().reservations_made() - fresh_before;
            if round == 0 {
                assert!(fresh > 0, "first build must reserve scratch");
            } else {
                assert_eq!(fresh, 0, "round {round} must recycle all sort/scan scratch");
                assert!(device.arena().recycled_takes() > 0);
            }
        }
    }

    #[test]
    fn boundary_point_lands_in_last_cell() {
        // Points exactly on the max corner must not index out of range.
        let points = [Point::new([0.0, 0.0]), Point::new([10.0, 10.0])];
        let grid = DenseGrid::build(&device(), &points, 1.0, 1);
        assert_eq!(grid.num_cells(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn same_cell_points_are_within_eps(
            seed in any::<u64>(),
            n in 1usize..300,
            eps in 0.05f32..3.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let points: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
                .collect();
            let grid = DenseGrid::build(&device(), &points, eps, 2);
            // The defining property of the grid: any two points sharing a
            // cell are within eps of each other.
            for c in 0..grid.num_cells() as u32 {
                let members = grid.cell_members(c);
                for (k, &a) in members.iter().enumerate() {
                    for &b in &members[k + 1..] {
                        let d = points[a as usize].dist(&points[b as usize]);
                        prop_assert!(d <= eps * 1.0001, "cellmates at distance {d} > eps {eps}");
                    }
                }
            }
        }
    }
}
