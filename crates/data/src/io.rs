//! Minimal CSV import/export for point sets.
//!
//! Lets users run the examples and the figure harness on their own data
//! (e.g. the real NGSIM/PortoTaxi extracts, if they have them) instead of
//! the synthetic stand-ins. Format: one point per line, coordinates
//! separated by commas; `#`-prefixed lines are comments.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use fdbscan_geom::Point;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line had the wrong number of fields or a non-numeric field.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Loads points from a CSV file (`D` columns per row).
pub fn load_csv<const D: usize>(path: &Path) -> Result<Vec<Point<D>>, CsvError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != D {
            return Err(CsvError::Parse {
                line: lineno + 1,
                message: format!("expected {D} fields, found {}", fields.len()),
            });
        }
        let mut coords = [0.0f32; D];
        for (c, field) in coords.iter_mut().zip(&fields) {
            *c = field.parse().map_err(|e| CsvError::Parse {
                line: lineno + 1,
                message: format!("bad number {field:?}: {e}"),
            })?;
        }
        points.push(Point::new(coords));
    }
    Ok(points)
}

/// Saves points to a CSV file (`D` columns per row).
pub fn save_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> Result<(), CsvError> {
    let mut writer = BufWriter::new(std::fs::File::create(path)?);
    for p in points {
        let row: Vec<String> = (0..D).map(|d| format!("{}", p[d])).collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdbscan_geom::{Point2, Point3};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fdbscan-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip_2d() {
        let path = tmp("rt2d.csv");
        let points = vec![Point2::new([1.5, -2.25]), Point2::new([0.0, 3.0])];
        save_csv(&path, &points).unwrap();
        let loaded: Vec<Point2> = load_csv(&path).unwrap();
        assert_eq!(loaded, points);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_3d() {
        let path = tmp("rt3d.csv");
        let points = vec![Point3::new([1.0, 2.0, 3.0])];
        save_csv(&path, &points).unwrap();
        let loaded: Vec<Point3> = load_csv(&path).unwrap();
        assert_eq!(loaded, points);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1.0, 2.0\n# trailing\n3.0,4.0\n").unwrap();
        let loaded: Vec<Point2> = load_csv(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_arity_is_reported_with_line() {
        let path = tmp("arity.csv");
        std::fs::write(&path, "1.0,2.0\n1.0\n").unwrap();
        let err = load_csv::<2>(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_number_is_reported() {
        let path = tmp("badnum.csv");
        std::fs::write(&path, "1.0,zebra\n").unwrap();
        let err = load_csv::<2>(&path).unwrap_err();
        assert!(err.to_string().contains("zebra"));
        std::fs::remove_file(&path).ok();
    }
}
