//! HACC-like 3-D cosmology snapshot generator (paper §5.2).
//!
//! The paper clusters one MPI rank of a 1024³-particle HACC simulation:
//! ~36 M particles in a sub-volume, "vastly more sparse, and more evenly
//! distributed" than the 2-D trajectory data, with clusters (halos)
//! clearly formed at the final simulation step.
//!
//! The generator reproduces that structure at configurable scale:
//!
//! * a fraction of particles sits in **halos** — isotropic clumps with a
//!   power-law mass function and compact cores,
//! * the rest is a diffuse background filling the box,
//!
//! tuned so the dense-cell membership under the paper's parameters
//! behaves like §5.2 reports: a modest fraction of points in dense cells
//! at `eps = 0.042, minpts = 5`, none for large `minpts`, and the vast
//! majority at `eps = 1.0`.

use fdbscan_geom::Point3;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::gaussian;

/// Generates an HACC-like particle snapshot in a `box_size`³ volume.
///
/// `halo_fraction` is the fraction of particles bound in halos (the rest
/// is diffuse background). The paper's rank volume is 64 Mpc/h per side;
/// use `box_size = 64.0` to make its `eps` values (0.042 … 1.0)
/// meaningful.
pub fn cosmology_like(n: usize, box_size: f32, halo_fraction: f64, seed: u64) -> Vec<Point3> {
    assert!(box_size > 0.0);
    assert!((0.0..=1.0).contains(&halo_fraction));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4841_4343);

    // Halo catalog: a power-law mass function (many small halos, few
    // large), radii growing with mass like r ~ m^(1/3).
    let halo_particles = (n as f64 * halo_fraction) as usize;
    let num_halos = (halo_particles / 60).max(1);
    struct Halo {
        center: [f32; 3],
        radius: f32,
        weight: f64,
    }
    let mut halos = Vec::with_capacity(num_halos);
    let mut total_weight = 0.0f64;
    for _ in 0..num_halos {
        // Pareto-ish mass: m = (1 - u)^(-2/3), truncated.
        let u: f64 = rng.gen_range(0.0..0.97);
        let mass = (1.0 - u).powf(-2.0 / 3.0);
        let radius = 0.15 * (mass as f32).powf(1.0 / 3.0) * box_size / 64.0;
        total_weight += mass;
        halos.push(Halo {
            center: [
                rng.gen_range(0.0..box_size),
                rng.gen_range(0.0..box_size),
                rng.gen_range(0.0..box_size),
            ],
            radius,
            weight: mass,
        });
    }
    // Cumulative weights for halo selection.
    let mut cumulative = Vec::with_capacity(num_halos);
    let mut acc = 0.0f64;
    for h in &halos {
        acc += h.weight / total_weight;
        cumulative.push(acc);
    }

    let mut points = Vec::with_capacity(n);
    for _ in 0..halo_particles {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = cumulative.partition_point(|&c| c < u).min(num_halos - 1);
        let halo = &halos[idx];
        // Isothermal-ish profile: radius ~ r_h * u^2 concentrates mass at
        // the core, with a small far tail.
        let r = halo.radius * rng.gen_range(0.0f32..1.0).powi(2) * 3.0;
        let (x, y, z) = (gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng));
        let norm = (x * x + y * y + z * z).sqrt().max(1e-6);
        points.push(Point3::new([
            (halo.center[0] + x / norm * r).rem_euclid(box_size),
            (halo.center[1] + y / norm * r).rem_euclid(box_size),
            (halo.center[2] + z / norm * r).rem_euclid(box_size),
        ]));
    }
    while points.len() < n {
        points.push(Point3::new([
            rng.gen_range(0.0..box_size),
            rng.gen_range(0.0..box_size),
            rng.gen_range(0.0..box_size),
        ]));
    }
    points.truncate(n);
    points
}

/// The paper's default snapshot parameters at a laptop-friendly scale:
/// 64 Mpc/h box, ~20 % of particles in halos.
pub fn default_snapshot(n: usize, seed: u64) -> Vec<Point3> {
    cosmology_like(n, 64.0, 0.2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_count_in_box() {
        let pts = cosmology_like(10_000, 64.0, 0.2, 1);
        assert_eq!(pts.len(), 10_000);
        assert!(pts.iter().all(|p| (0..3).all(|d| (0.0..=64.0).contains(&p[d]))));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(cosmology_like(500, 64.0, 0.2, 9), cosmology_like(500, 64.0, 0.2, 9));
        assert_ne!(cosmology_like(500, 64.0, 0.2, 9), cosmology_like(500, 64.0, 0.2, 10));
    }

    #[test]
    fn halo_fraction_zero_is_uniform() {
        let pts = cosmology_like(5000, 64.0, 0.0, 3);
        // Mean nearest-octant occupancy should be near uniform: crude
        // check via the mean coordinate.
        let mean: f32 = pts.iter().map(|p| p[0]).sum::<f32>() / pts.len() as f32;
        assert!((mean - 32.0).abs() < 2.0, "mean x = {mean}");
    }

    #[test]
    fn halos_create_local_density() {
        let clustered = cosmology_like(20_000, 64.0, 0.5, 4);
        let uniform = cosmology_like(20_000, 64.0, 0.0, 4);
        let count_close = |pts: &[Point3]| {
            pts.iter()
                .step_by(97)
                .filter(|p| {
                    pts.iter().step_by(3).filter(|q| q.dist_sq(p) <= 0.042 * 0.042).count() >= 2
                })
                .count()
        };
        assert!(
            count_close(&clustered) > 4 * count_close(&uniform).max(1),
            "halos must create close pairs ({} vs {})",
            count_close(&clustered),
            count_close(&uniform)
        );
    }

    #[test]
    fn default_snapshot_is_sparse_overall() {
        // "Vastly more sparse" than the 2-D data: most points should NOT
        // have 5 neighbors within eps = 0.042 at this sampling density.
        let pts = default_snapshot(30_000, 5);
        let eps_sq = 0.042f32 * 0.042;
        let sampled: Vec<&Point3> = pts.iter().step_by(101).collect();
        let dense = sampled
            .iter()
            .filter(|p| pts.iter().filter(|q| q.dist_sq(p) <= eps_sq).count() >= 5)
            .count();
        let frac = dense as f64 / sampled.len() as f64;
        assert!(frac < 0.5, "dense-neighborhood fraction {frac} too high");
    }
}
