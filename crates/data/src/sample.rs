//! Random subsampling (the paper's studies draw random subsamples of the
//! datasets to accommodate the memory appetite of some baselines, §5.1).

use fdbscan_geom::Point;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Draws `k` points uniformly without replacement (seeded, stable).
///
/// If `k >= points.len()`, returns a copy of the input (order shuffled).
pub fn subsample<const D: usize>(points: &[Point<D>], k: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5341_4d50);
    let mut indices: Vec<usize> = (0..points.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(k.min(points.len()));
    indices.into_iter().map(|i| points[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdbscan_geom::Point2;

    fn pts(n: usize) -> Vec<Point2> {
        (0..n).map(|i| Point2::new([i as f32, 0.0])).collect()
    }

    #[test]
    fn draws_exactly_k_distinct_points() {
        let points = pts(100);
        let sample = subsample(&points, 30, 7);
        assert_eq!(sample.len(), 30);
        let mut xs: Vec<i64> = sample.iter().map(|p| p[0] as i64).collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), 30, "sample must be without replacement");
    }

    #[test]
    fn oversized_k_returns_everything() {
        let points = pts(10);
        let sample = subsample(&points, 50, 1);
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let points = pts(1000);
        assert_eq!(subsample(&points, 100, 5), subsample(&points, 100, 5));
        assert_ne!(subsample(&points, 100, 5), subsample(&points, 100, 6));
    }

    #[test]
    fn empty_input() {
        let points: Vec<Point2> = vec![];
        assert!(subsample(&points, 10, 1).is_empty());
    }
}
