//! 2-D geospatial stand-ins for the paper's datasets (all in the unit
//! square, so the paper's `eps` values carry over).

use fdbscan_geom::Point2;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::gaussian;

/// The three 2-D dataset families of the paper's §5.1 evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset2 {
    /// NGSIM-like: highway corridors with extreme stacking.
    Ngsim,
    /// PortoTaxi-like: radial street network, center-heavy.
    PortoTaxi,
    /// 3D-Road-like: sparse road polylines.
    RoadNetwork,
}

impl Dataset2 {
    /// Generates `n` points of this family.
    pub fn generate(self, n: usize, seed: u64) -> Vec<Point2> {
        match self {
            Dataset2::Ngsim => ngsim_like(n, seed),
            Dataset2::PortoTaxi => porto_taxi_like(n, seed),
            Dataset2::RoadNetwork => road_network_like(n, seed),
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Dataset2::Ngsim => "ngsim",
            Dataset2::PortoTaxi => "porto-taxi",
            Dataset2::RoadNetwork => "3d-road",
        }
    }

    /// All three families, in the paper's order.
    pub const ALL: [Dataset2; 3] = [Dataset2::Ngsim, Dataset2::PortoTaxi, Dataset2::RoadNetwork];
}

/// NGSIM-like vehicle trajectories.
///
/// The real dataset transcribes camera footage at three highway
/// locations: points pile up along a handful of lanes within small
/// viewports, making the data "overly dense even for small values of
/// eps" (§5.1). We emulate three corridors, each a bundle of parallel
/// lanes; trajectory samples advance along a lane with tiny lateral
/// jitter and frequent stop-and-go stacking.
pub fn ngsim_like(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4e47_5349);
    // Three viewports (like the three studied locations).
    let corridors: [([f32; 2], [f32; 2]); 3] = [
        ([0.10, 0.15], [0.25, 0.35]), // start -> end
        ([0.50, 0.60], [0.62, 0.40]),
        ([0.75, 0.80], [0.90, 0.92]),
    ];
    let lanes_per_corridor = 5;
    let lane_offset = 0.0008; // lanes are ~a meter apart at city scale
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        let (a, b) = corridors[rng.gen_range(0..corridors.len())];
        let lane = rng.gen_range(0..lanes_per_corridor) as f32;
        // Perpendicular lane offset.
        let dx = b[0] - a[0];
        let dy = b[1] - a[1];
        let len = (dx * dx + dy * dy).sqrt();
        let (nx, ny) = (-dy / len, dx / len);
        // A car trajectory: a run of consecutive samples along the lane.
        let mut t = rng.gen_range(0.0f32..0.8);
        let run = rng.gen_range(5..40).min(n - points.len());
        // Stop-and-go: cars near intersections produce long stationary
        // runs, stacking samples at nearly identical coordinates.
        let stalled = rng.gen_bool(0.4);
        for _ in 0..run {
            let jitter = gaussian(&mut rng) * 0.0002;
            let x = a[0] + dx * t + nx * (lane * lane_offset) + jitter;
            let y = a[1] + dy * t + ny * (lane * lane_offset) + jitter;
            points.push(Point2::new([x.clamp(0.0, 1.0), y.clamp(0.0, 1.0)]));
            t += if stalled { 0.000_05 } else { rng.gen_range(0.001..0.01) };
            if t > 1.0 {
                break;
            }
        }
    }
    points.truncate(n);
    points
}

/// PortoTaxi-like trajectories.
///
/// Taxis wander a radial street grid around the city center: street
/// segments alternate axis-aligned moves, trip density decays with the
/// distance from the center, and GPS samples drop every few dozen
/// meters. The resulting density profile is center-heavy with long
/// sparse tails — like the real Porto data.
pub fn porto_taxi_like(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x504f_5254);
    let center = [0.5f32, 0.5];
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        // Trip start: radius follows an exponential-ish decay.
        let radius = -(0.12 * rng.gen_range(f32::EPSILON..1.0f32).ln());
        let angle = rng.gen_range(0.0..std::f32::consts::TAU);
        let mut x = (center[0] + radius * angle.cos()).clamp(0.0, 1.0);
        let mut y = (center[1] + radius * angle.sin()).clamp(0.0, 1.0);
        // Snap to a street grid of ~200 blocks per unit.
        let snap = |v: f32| (v * 200.0).round() / 200.0;
        let trip_len = rng.gen_range(10..60).min(n - points.len());
        let mut horizontal = rng.gen_bool(0.5);
        for _ in 0..trip_len {
            // GPS keeps sampling while the taxi idles at stands and
            // traffic lights: stacked samples at one snapped location.
            // This is what makes real taxi data overwhelmingly "dense
            // cell" material in the paper's §5.1 measurements.
            if rng.gen_bool(0.25) {
                let idle = rng.gen_range(5..40).min(n.saturating_sub(points.len()));
                let ix = snap(x);
                let iy = snap(y);
                for _ in 0..idle {
                    points.push(Point2::new([
                        (ix + gaussian(&mut rng) * 0.0001).clamp(0.0, 1.0),
                        (iy + gaussian(&mut rng) * 0.0001).clamp(0.0, 1.0),
                    ]));
                }
                if points.len() >= n {
                    break;
                }
            }
            points.push(Point2::new([
                (snap(x) + gaussian(&mut rng) * 0.0004).clamp(0.0, 1.0),
                (snap(y) + gaussian(&mut rng) * 0.0004).clamp(0.0, 1.0),
            ]));
            // Drive one GPS-sample step along the current street; turn
            // at intersections with some probability.
            let step = rng.gen_range(0.002..0.006);
            // Drift gently back toward the center so trips stay urban.
            let toward_center = rng.gen_bool(0.55);
            if horizontal {
                let dir = if toward_center == (x > center[0]) { -1.0 } else { 1.0 };
                x = (x + dir * step).clamp(0.0, 1.0);
            } else {
                let dir = if toward_center == (y > center[1]) { -1.0 } else { 1.0 };
                y = (y + dir * step).clamp(0.0, 1.0);
            }
            if rng.gen_bool(0.25) {
                horizontal = !horizontal;
            }
        }
    }
    points.truncate(n);
    points
}

/// 3D-Road-like sparse road network.
///
/// The real dataset samples the road network of a whole Danish province:
/// points lie along polylines that branch recursively, with much lower
/// overall density than the trajectory datasets. We grow a random
/// recursive tree of road segments and sample points along each segment
/// at road-survey spacing.
pub fn road_network_like(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x524f_4144);
    // Grow the network: segments spawn child segments at random points
    // with a deflected heading, like roads branching off.
    struct Segment {
        start: [f32; 2],
        heading: f32,
        length: f32,
        depth: u32,
    }
    let mut segments = vec![Segment {
        start: [0.05, rng.gen_range(0.2..0.8)],
        heading: rng.gen_range(-0.3..0.3),
        length: 0.9,
        depth: 0,
    }];
    let mut all: Vec<([f32; 2], [f32; 2])> = Vec::new();
    while let Some(seg) = segments.pop() {
        let end = [
            (seg.start[0] + seg.length * seg.heading.cos()).clamp(0.0, 1.0),
            (seg.start[1] + seg.length * seg.heading.sin()).clamp(0.0, 1.0),
        ];
        all.push((seg.start, end));
        if seg.depth < 6 && all.len() < 300 {
            let children = rng.gen_range(1..4);
            for _ in 0..children {
                let t = rng.gen_range(0.1..0.9f32);
                let branch_start = [
                    seg.start[0] + (end[0] - seg.start[0]) * t,
                    seg.start[1] + (end[1] - seg.start[1]) * t,
                ];
                segments.push(Segment {
                    start: branch_start,
                    heading: seg.heading
                        + rng.gen_range(0.5..1.2) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                    length: seg.length * rng.gen_range(0.35..0.6),
                    depth: seg.depth + 1,
                });
            }
        }
    }
    // Sample points along the segments, weighted by length.
    let total_len: f32 = all.iter().map(|(a, b)| dist2(a, b)).sum();
    let mut points = Vec::with_capacity(n);
    for (a, b) in &all {
        let share = ((dist2(a, b) / total_len) * n as f32).round() as usize;
        for _ in 0..share {
            let t = rng.gen_range(0.0..1.0f32);
            points.push(Point2::new([
                (a[0] + (b[0] - a[0]) * t + gaussian(&mut rng) * 0.0015).clamp(0.0, 1.0),
                (a[1] + (b[1] - a[1]) * t + gaussian(&mut rng) * 0.0015).clamp(0.0, 1.0),
            ]));
        }
        if points.len() >= n {
            break;
        }
    }
    // Round-off slack: fill with extra samples on random segments.
    while points.len() < n {
        let (a, b) = all[rng.gen_range(0..all.len())];
        let t = rng.gen_range(0.0..1.0f32);
        points.push(Point2::new([
            (a[0] + (b[0] - a[0]) * t + gaussian(&mut rng) * 0.0015).clamp(0.0, 1.0),
            (a[1] + (b[1] - a[1]) * t + gaussian(&mut rng) * 0.0015).clamp(0.0, 1.0),
        ]));
    }
    points.truncate(n);
    points
}

fn dist2(a: &[f32; 2], b: &[f32; 2]) -> f32 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_unit_square(points: &[Point2]) -> bool {
        points.iter().all(|p| (0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]))
    }

    /// Fraction of points whose 0.01-neighborhood (checked against a
    /// sample) holds at least `k` of `sample_size` sampled points.
    fn dense_fraction(points: &[Point2], eps: f32, k: usize) -> f64 {
        let sample: Vec<&Point2> = points.iter().step_by(7).collect();
        let checked: Vec<&Point2> = points.iter().step_by(13).take(200).collect();
        let eps_sq = eps * eps;
        let dense = checked
            .iter()
            .filter(|p| sample.iter().filter(|q| q.dist_sq(p) <= eps_sq).count() >= k)
            .count();
        dense as f64 / checked.len() as f64
    }

    #[test]
    fn all_families_generate_requested_count_in_bounds() {
        for kind in Dataset2::ALL {
            let pts = kind.generate(5000, 42);
            assert_eq!(pts.len(), 5000, "{}", kind.name());
            assert!(in_unit_square(&pts), "{}", kind.name());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in Dataset2::ALL {
            assert_eq!(kind.generate(1000, 3), kind.generate(1000, 3), "{}", kind.name());
            assert_ne!(kind.generate(1000, 3), kind.generate(1000, 4), "{}", kind.name());
        }
    }

    #[test]
    fn ngsim_is_extremely_dense() {
        // Most NGSIM points must have many close neighbors even at a
        // small radius (the paper: "overly dense even for small eps").
        let pts = ngsim_like(8000, 1);
        let frac = dense_fraction(&pts, 0.005, 10);
        assert!(frac > 0.9, "ngsim dense fraction {frac}");
    }

    #[test]
    fn road_network_is_sparser_than_ngsim() {
        let road = road_network_like(8000, 1);
        let ngsim = ngsim_like(8000, 1);
        let road_frac = dense_fraction(&road, 0.003, 10);
        let ngsim_frac = dense_fraction(&ngsim, 0.003, 10);
        assert!(
            road_frac < ngsim_frac,
            "road ({road_frac}) must be sparser than ngsim ({ngsim_frac})"
        );
    }

    #[test]
    fn porto_is_center_heavy() {
        let pts = porto_taxi_like(8000, 2);
        let center = Point2::new([0.5, 0.5]);
        let near = pts.iter().filter(|p| p.dist(&center) < 0.2).count();
        let far = pts.iter().filter(|p| p.dist(&center) >= 0.35).count();
        assert!(near > 3 * far, "porto must concentrate near the center ({near} vs {far})");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Dataset2::Ngsim.name(), "ngsim");
        assert_eq!(Dataset2::PortoTaxi.name(), "porto-taxi");
        assert_eq!(Dataset2::RoadNetwork.name(), "3d-road");
    }
}
