#![warn(missing_docs)]

//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on three real 2-D geospatial datasets (NGSIM
//! vehicle trajectories, Porto taxi trajectories, the North Jutland road
//! network) and one 3-D cosmology snapshot (HACC). None are redistributable
//! here, so this crate generates seeded synthetic stand-ins that
//! reproduce the *density structure* the evaluation depends on:
//!
//! * [`synth2d::ngsim_like`] — a few highway corridors with lane
//!   structure and extreme point stacking near intersections (NGSIM is
//!   "overly dense even for small eps", §5.1),
//! * [`synth2d::porto_taxi_like`] — trajectories over a radial street
//!   network with density decaying away from the center,
//! * [`synth2d::road_network_like`] — sparse polylines of a recursive
//!   road network (3D Road is the sparsest of the three),
//! * [`cosmology::cosmology_like`] — clustered halos over a diffuse
//!   background in a 3-D box, tuned so dense-cell membership tracks the
//!   paper's §5.2 numbers (~13 % at `minpts = 5`, about none past 100).
//!
//! All 2-D datasets live in the unit square so the paper's `eps` values
//! carry over directly. Every generator is deterministic in its seed.
//!
//! # Example
//!
//! ```
//! use fdbscan_data::Dataset2;
//!
//! let porto = Dataset2::PortoTaxi.generate(10_000, 42);
//! assert_eq!(porto.len(), 10_000);
//! // Seeded: the same call reproduces the same dataset.
//! assert_eq!(porto, Dataset2::PortoTaxi.generate(10_000, 42));
//!
//! let sample = fdbscan_data::subsample(&porto, 1_000, 7);
//! assert_eq!(sample.len(), 1_000);
//! ```

pub mod cosmology;
pub mod io;
pub mod sample;
pub mod synth2d;

pub use cosmology::cosmology_like;
pub use sample::subsample;
pub use synth2d::{ngsim_like, porto_taxi_like, road_network_like, Dataset2};

use fdbscan_geom::{Point, SoaPoints};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Uniformly random points in `[0, extent]^D`.
pub fn uniform<const D: usize>(n: usize, extent: f32, seed: u64) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut coords = [0.0f32; D];
            for c in coords.iter_mut() {
                *c = rng.gen_range(0.0..extent);
            }
            Point::new(coords)
        })
        .collect()
}

/// [`uniform`], generated straight into the dimension-major device
/// layout ([`SoaPoints`]) with no array-of-structures intermediate.
/// Bit-identical coordinates to `uniform` with the same seed.
pub fn uniform_soa<const D: usize>(n: usize, extent: f32, seed: u64) -> SoaPoints<D> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; D * n];
    // Draw in the same per-point order as `uniform`, scatter dim-major.
    for i in 0..n {
        for (d, lane) in data.chunks_exact_mut(n).enumerate() {
            debug_assert!(d < D);
            lane[i] = rng.gen_range(0.0..extent);
        }
    }
    SoaPoints::from_dim_major(data, n)
}

/// Converts any generated dataset to the dimension-major device layout.
pub fn to_soa<const D: usize>(points: &[Point<D>]) -> SoaPoints<D> {
    SoaPoints::from_points(points)
}

/// `k` isotropic Gaussian blobs plus a uniform noise floor, in
/// `[0, extent]^D`. `noise_fraction` of the points are background noise.
pub fn blobs<const D: usize>(
    n: usize,
    k: usize,
    spread: f32,
    extent: f32,
    noise_fraction: f64,
    seed: u64,
) -> Vec<Point<D>> {
    assert!(k >= 1, "need at least one blob");
    assert!((0.0..=1.0).contains(&noise_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<[f32; D]> = (0..k)
        .map(|_| {
            let mut c = [0.0f32; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.1 * extent..0.9 * extent);
            }
            c
        })
        .collect();
    (0..n)
        .map(|_| {
            if rng.gen_bool(noise_fraction) {
                let mut coords = [0.0f32; D];
                for c in coords.iter_mut() {
                    *c = rng.gen_range(0.0..extent);
                }
                return Point::new(coords);
            }
            let center = centers[rng.gen_range(0..k)];
            let mut coords = [0.0f32; D];
            for (c, &mu) in coords.iter_mut().zip(center.iter()) {
                *c = (mu + gaussian(&mut rng) * spread).clamp(0.0, extent);
            }
            Point::new(coords)
        })
        .collect()
}

/// A standard normal sample (Box–Muller; two uniforms per call).
pub(crate) fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_count() {
        let pts = uniform::<2>(1000, 3.0, 1);
        assert_eq!(pts.len(), 1000);
        assert!(pts.iter().all(|p| (0.0..3.0).contains(&p[0]) && (0.0..3.0).contains(&p[1])));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform::<3>(100, 1.0, 7), uniform::<3>(100, 1.0, 7));
        assert_ne!(uniform::<3>(100, 1.0, 7), uniform::<3>(100, 1.0, 8));
    }

    #[test]
    fn uniform_soa_matches_uniform_bit_for_bit() {
        let aos = uniform::<3>(257, 2.5, 11);
        let soa = uniform_soa::<3>(257, 2.5, 11);
        assert_eq!(soa.len(), aos.len());
        for (i, p) in aos.iter().enumerate() {
            assert_eq!(soa.get(i), *p, "point {i}");
        }
        assert_eq!(to_soa(&aos), soa);
    }

    #[test]
    fn blobs_cluster_around_centers() {
        let pts = blobs::<2>(2000, 3, 0.01, 1.0, 0.0, 5);
        assert_eq!(pts.len(), 2000);
        // With spread 0.01 and no noise, the pairwise distance to the
        // nearest of 3 centers is tiny; verify via a crude density check:
        // the bounding box of the data is much smaller than the domain
        // only if centers are few — instead verify that most points have
        // a close neighbor.
        let close = pts
            .iter()
            .enumerate()
            .take(200)
            .filter(|(i, p)| pts.iter().enumerate().any(|(j, q)| j != *i && p.dist(q) < 0.05))
            .count();
        assert!(close > 190, "blob points must be locally dense, got {close}/200");
    }

    #[test]
    fn blobs_noise_fraction_adds_background() {
        let pts = blobs::<2>(5000, 2, 0.005, 1.0, 0.5, 9);
        // Roughly half the points should be far from both tiny blobs.
        let isolated = pts
            .iter()
            .enumerate()
            .take(300)
            .filter(|(i, p)| !pts.iter().enumerate().any(|(j, q)| j != *i && p.dist(q) < 0.01))
            .count();
        assert!(isolated > 50, "expected a noise floor, got {isolated}/300 isolated");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f32> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "at least one blob")]
    fn blobs_reject_zero_k() {
        blobs::<2>(10, 0, 0.1, 1.0, 0.0, 1);
    }
}
