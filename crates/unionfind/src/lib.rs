#![warn(missing_docs)]

//! Synchronization-free union-find for batched parallel clustering.
//!
//! Reimplementation of the union-find used by the paper (§4): the ECL-CC
//! algorithm of Jaiganesh & Burtscher (HPDC'18), in its first-kernel form
//! (one thread per vertex). Properties that matter here:
//!
//! * **lock-free hooking** — `union` makes the *larger* of the two roots
//!   point to the smaller with a single compare-and-swap; the invariant
//!   "parent ≤ child" makes the CAS self-validating (success proves the
//!   larger index was still a root),
//! * **intermediate pointer jumping** — `find` shortens the path of every
//!   element it traverses by making each skip over the next, halving path
//!   lengths per traversal without any synchronization,
//! * **finalization** — because compression is opportunistic, labels are
//!   not guaranteed to point at roots when the main phase ends; a
//!   [`AtomicLabels::flatten`] kernel makes every label point directly at
//!   its representative (paper §4, "extra finalization phase").
//!
//! # Memory ordering
//!
//! All label operations are `Relaxed`, exactly as in the CUDA original:
//! the labels array is the only shared state, every read of a label value
//! is valid regardless of interleaving (values only ever decrease toward
//! the representative), and cross-phase visibility comes from the device's
//! launch barrier, not from the atomics themselves.
//!
//! # Example
//!
//! ```
//! use fdbscan_device::Device;
//! use fdbscan_unionfind::AtomicLabels;
//!
//! let device = Device::with_defaults();
//! let labels = AtomicLabels::new(6);
//! // Unions may run concurrently from any kernel.
//! let edges = [(0u32, 1u32), (1, 2), (4, 5)];
//! device.launch(edges.len(), |e| {
//!     let (a, b) = edges[e];
//!     labels.union(a, b);
//! });
//! labels.flatten(&device);
//! assert!(labels.same_set(0, 2));
//! assert!(!labels.same_set(0, 4));
//! assert_eq!(labels.count_sets(), 3); // {0,1,2}, {3}, {4,5}
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use fdbscan_device::{Counters, Device};

pub mod sequential;

pub use sequential::SequentialDsu;

/// Sentinel meaning "not a member of any cluster" in label arrays that
/// overload labels with membership (see [`AtomicLabels::try_claim`]).
pub const UNVISITED: u32 = u32::MAX;

/// A flat array of atomic parent pointers over indices `0..n`.
///
/// Index `i` is a *root* iff `labels[i] == i`. The representative of a set
/// is its smallest-index member once all paths are compressed.
pub struct AtomicLabels {
    labels: Vec<AtomicU32>,
    counters: Option<Arc<Counters>>,
}

impl AtomicLabels {
    /// Creates `n` singleton sets (`labels[i] = i`).
    ///
    /// # Panics
    /// Panics if `n > u32::MAX as usize` (labels are 32-bit, matching the
    /// GPU implementation's memory layout).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "labels are u32");
        Self { labels: (0..n as u32).map(AtomicU32::new).collect(), counters: None }
    }

    /// Like [`AtomicLabels::new`] but increments the `unions`/`finds`
    /// counters of `counters` on every operation.
    pub fn with_counters(n: usize, counters: Arc<Counters>) -> Self {
        let mut this = Self::new(n);
        this.counters = Some(counters);
        this
    }

    /// Rebuilds the structure from a parent array previously captured
    /// with [`AtomicLabels::snapshot`] — the resume path of a
    /// checkpointed run. No validation beyond length is performed; the
    /// checkpoint layer guards integrity.
    ///
    /// # Panics
    /// Panics if `labels.len() > u32::MAX as usize`.
    pub fn from_labels(labels: Vec<u32>) -> Self {
        assert!(labels.len() <= u32::MAX as usize, "labels are u32");
        Self { labels: labels.into_iter().map(AtomicU32::new).collect(), counters: None }
    }

    /// Attaches an operation counter after construction (used when
    /// restoring from a snapshot, where the counters are not known at
    /// decode time).
    pub fn attach_counters(&mut self, counters: Arc<Counters>) {
        self.counters = Some(counters);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Raw label value of `i` (a parent pointer, not necessarily a root).
    #[inline]
    pub fn label(&self, i: u32) -> u32 {
        self.labels[i as usize].load(Ordering::Relaxed)
    }

    /// Finds the representative of `i`, compressing the traversed path by
    /// intermediate pointer jumping.
    ///
    /// Safe to call concurrently with other `find`/`union` operations.
    #[inline]
    pub fn find(&self, i: u32) -> u32 {
        if let Some(c) = &self.counters {
            c.finds.fetch_add(1, Ordering::Relaxed);
        }
        let labels = &self.labels;
        let mut prev = i;
        let mut curr = labels[i as usize].load(Ordering::Relaxed);
        loop {
            let next = labels[curr as usize].load(Ordering::Relaxed);
            if next == curr {
                return curr;
            }
            // Intermediate pointer jumping: `prev` skips over `curr`.
            // Relaxed store: any racing write also points into the same
            // tree at equal or lesser depth, so all interleavings are
            // valid states.
            labels[prev as usize].store(next, Ordering::Relaxed);
            prev = curr;
            curr = next;
        }
    }

    /// Merges the sets of `a` and `b`. Returns `true` if two distinct
    /// sets were merged, `false` if they were already the same set.
    ///
    /// Lock-free: hooks the larger root under the smaller with a CAS that
    /// simultaneously verifies rootness.
    pub fn union(&self, a: u32, b: u32) -> bool {
        if let Some(c) = &self.counters {
            c.unions.fetch_add(1, Ordering::Relaxed);
        }
        let mut a = a;
        let mut b = b;
        loop {
            let ra = self.find_uncounted(a);
            let rb = self.find_uncounted(b);
            if ra == rb {
                return false;
            }
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            // CAS success proves `hi` was still a root at the instant of
            // hooking, so no tree edge is ever lost.
            if self.labels[hi as usize]
                .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
            // Another thread hooked `hi` first; retry from the new roots.
            a = hi;
            b = lo;
        }
    }

    /// `find` without counter accounting (internal fast path).
    #[inline]
    fn find_uncounted(&self, i: u32) -> u32 {
        let labels = &self.labels;
        let mut prev = i;
        let mut curr = labels[i as usize].load(Ordering::Relaxed);
        loop {
            let next = labels[curr as usize].load(Ordering::Relaxed);
            if next == curr {
                return curr;
            }
            labels[prev as usize].store(next, Ordering::Relaxed);
            prev = curr;
            curr = next;
        }
    }

    /// Returns `true` if `a` and `b` are currently in the same set.
    ///
    /// Only meaningful as a stable answer once no concurrent unions can
    /// run (e.g. after the main phase); during concurrent modification it
    /// is a snapshot.
    pub fn same_set(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Atomically claims element `i` for the set rooted at `root`,
    /// succeeding only if `i` is still its own singleton (`labels[i] ==
    /// i`).
    ///
    /// This is the paper's replacement for Algorithm 3's critical section
    /// (§3.2): a border point is attached to the first cluster that
    /// reaches it, and the CAS guarantees no second cluster can attach it
    /// again (which would "bridge" distinct clusters).
    pub fn try_claim(&self, i: u32, root: u32) -> bool {
        if let Some(c) = &self.counters {
            c.label_cas.fetch_add(1, Ordering::Relaxed);
        }
        self.labels[i as usize]
            .compare_exchange(i, root, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Finalization kernel: makes every label point directly at its
    /// representative (paper §4). Runs as one batched launch.
    ///
    /// Must not run concurrently with `union` (callers run it after the
    /// main phase; the launch boundary provides the ordering).
    pub fn flatten(&self, device: &Device) {
        let labels = &self.labels;
        device.launch_named("uf.flatten", labels.len(), |i| {
            // Read-only walk to the root: the tree is static during
            // finalization except for idempotent compression writes.
            let mut root = labels[i].load(Ordering::Relaxed);
            loop {
                let next = labels[root as usize].load(Ordering::Relaxed);
                if next == root {
                    break;
                }
                root = next;
            }
            labels[i].store(root, Ordering::Relaxed);
        });
    }

    /// Absorbs a batch of union edges — the "merge log" of another
    /// forest (e.g. a distributed rank's local trees translated to
    /// global ids). Returns how many edges merged two distinct sets.
    ///
    /// This is the mergeable-forest primitive of the distributed merge:
    /// because [`AtomicLabels::union`] hooks the larger root under the
    /// smaller, the root of every tree is its smallest member, so the
    /// **flattened** labels after absorbing any permutation (or
    /// replayed duplicate) of the same edge multiset are bit-identical.
    /// A merge coordinator can therefore crash and a successor can
    /// replay the logs from scratch to the same global labeling.
    pub fn absorb_edges(&self, edges: &[(u32, u32)]) -> usize {
        edges.iter().filter(|&&(a, b)| self.union(a, b)).count()
    }

    /// Host-side finalization: returns the canonical (smallest-member)
    /// representative of every element without launching a device
    /// kernel and without mutating the structure. The device-kernel
    /// equivalent is [`AtomicLabels::flatten`] followed by
    /// [`AtomicLabels::snapshot`]; this form exists for merge
    /// coordinators replaying logs outside any rank's device.
    ///
    /// Must not run concurrently with `union` (same contract as
    /// `flatten`).
    pub fn canonicalize(&self) -> Vec<u32> {
        let n = self.labels.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut root = self.labels[i].load(Ordering::Relaxed);
            loop {
                let next = self.labels[root as usize].load(Ordering::Relaxed);
                if next == root {
                    break;
                }
                root = next;
            }
            out.push(root);
        }
        out
    }

    /// Copies out the label values.
    pub fn snapshot(&self) -> Vec<u32> {
        self.labels.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }

    /// Number of distinct sets (counts roots). O(n); intended for tests
    /// and statistics.
    pub fn count_sets(&self) -> usize {
        self.labels
            .iter()
            .enumerate()
            .filter(|(i, l)| l.load(Ordering::Relaxed) == *i as u32)
            .count()
    }
}

impl std::fmt::Debug for AtomicLabels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicLabels").field("len", &self.len()).finish()
    }
}

/// Union-find parents checkpoint as their plain parent array. The
/// restored structure carries no counters; attach them with
/// [`AtomicLabels::attach_counters`] after decoding.
impl fdbscan_device::Checkpointable for AtomicLabels {
    const KIND: &'static str = "unionfind.labels";

    fn to_snapshot(&self) -> fdbscan_device::json::Json {
        fdbscan_device::snapshot::u32s_to_json(&self.snapshot())
    }

    fn from_snapshot(
        snapshot: &fdbscan_device::json::Json,
    ) -> Result<Self, fdbscan_device::SnapshotError> {
        Ok(Self::from_labels(fdbscan_device::snapshot::json_to_u32s(snapshot)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdbscan_device::DeviceConfig;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn singletons_at_construction() {
        let uf = AtomicLabels::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.count_sets(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_reports() {
        let uf = AtomicLabels::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1), "second union of same pair is a no-op");
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 3));
        assert_eq!(uf.count_sets(), 1);
        assert!(uf.same_set(0, 2));
    }

    #[test]
    fn representative_is_smallest_after_flatten() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let uf = AtomicLabels::new(6);
        uf.union(5, 3);
        uf.union(3, 4);
        uf.union(1, 2);
        uf.flatten(&device);
        let labels = uf.snapshot();
        assert_eq!(labels[3], 3);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[5], 3);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn flatten_makes_labels_roots() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let n = 10_000;
        let uf = AtomicLabels::new(n);
        // A long chain: 0-1, 1-2, 2-3, ...
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        uf.flatten(&device);
        let labels = uf.snapshot();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn flatten_is_idempotent() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let uf = AtomicLabels::new(100);
        for i in 0..50 {
            uf.union(i, i + 50);
        }
        uf.flatten(&device);
        let first = uf.snapshot();
        uf.flatten(&device);
        assert_eq!(first, uf.snapshot());
    }

    #[test]
    fn absorb_edges_is_idempotent_and_order_independent() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let edges = vec![(4u32, 7u32), (1, 2), (7, 1), (9, 8), (3, 3)];
        let forward = AtomicLabels::new(10);
        assert_eq!(forward.absorb_edges(&edges), 4, "(3,3) merges nothing");

        // Reversed order + a full replay of the log: same partition,
        // and — after canonicalization — bit-identical labels.
        let reversed = AtomicLabels::new(10);
        let mut rev = edges.clone();
        rev.reverse();
        reversed.absorb_edges(&rev);
        assert_eq!(reversed.absorb_edges(&edges), 0, "replay is idempotent");
        assert_eq!(forward.canonicalize(), reversed.canonicalize());

        // The host-side canonical form agrees with the device flatten.
        forward.flatten(&device);
        assert_eq!(forward.snapshot(), reversed.canonicalize());
    }

    #[test]
    fn canonicalize_does_not_mutate() {
        let uf = AtomicLabels::new(5);
        uf.union(4, 0);
        let before = uf.snapshot();
        let canon = uf.canonicalize();
        assert_eq!(uf.snapshot(), before, "canonicalize must be read-only");
        assert_eq!(canon[4], 0);
        assert_eq!(canon[0], 0);
    }

    #[test]
    fn try_claim_succeeds_once() {
        let uf = AtomicLabels::new(3);
        assert!(uf.try_claim(2, 0));
        assert!(!uf.try_claim(2, 1), "a claimed element cannot be re-claimed");
        assert_eq!(uf.find(2), 0);
    }

    #[test]
    fn try_claim_fails_on_non_singleton() {
        let uf = AtomicLabels::new(3);
        uf.union(1, 2); // 2's label now points at 1
        assert!(!uf.try_claim(2, 0));
    }

    #[test]
    fn counters_record_operations() {
        let counters = Arc::new(Counters::default());
        let uf = AtomicLabels::with_counters(10, Arc::clone(&counters));
        uf.union(0, 1);
        uf.find(1);
        uf.try_claim(5, 0);
        let snap = counters.snapshot();
        assert_eq!(snap.unions, 1);
        assert_eq!(snap.finds, 1);
        assert_eq!(snap.label_cas, 1);
    }

    #[test]
    fn snapshot_restore_preserves_sets() {
        use fdbscan_device::Checkpointable;
        let uf = AtomicLabels::new(8);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.union(6, 7);
        let restored = AtomicLabels::from_snapshot(&uf.to_snapshot()).unwrap();
        assert_eq!(restored.len(), 8);
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_eq!(uf.same_set(i, j), restored.same_set(i, j), "pair ({i},{j})");
            }
        }
        // A restored structure keeps working (and can count again).
        let counters = Arc::new(Counters::default());
        let mut restored = restored;
        restored.attach_counters(Arc::clone(&counters));
        restored.union(1, 2);
        assert_eq!(counters.snapshot().unions, 1);
    }

    #[test]
    fn concurrent_unions_match_sequential_dsu() {
        let device = Device::new(DeviceConfig::default().with_workers(4).with_block_size(32));
        let n = 5_000u32;
        let mut rng = StdRng::seed_from_u64(42);
        let edges: Vec<(u32, u32)> =
            (0..20_000).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect();

        let uf = AtomicLabels::new(n as usize);
        let edges_ref = &edges;
        let uf_ref = &uf;
        device.launch(edges.len(), |e| {
            let (a, b) = edges_ref[e];
            uf_ref.union(a, b);
        });
        uf.flatten(&device);

        let mut dsu = SequentialDsu::new(n as usize);
        for &(a, b) in &edges {
            dsu.union(a, b);
        }
        for a in 0..n {
            for b in [a.wrapping_add(1) % n, a.wrapping_add(17) % n] {
                assert_eq!(
                    uf.same_set(a, b),
                    dsu.same_set(a, b),
                    "disagreement for pair ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn concurrent_chain_collapses_to_one_set() {
        // Worst case for hooking: every thread unions (i, i+1).
        let device = Device::new(DeviceConfig::default().with_workers(4).with_block_size(16));
        let n = 10_000;
        let uf = AtomicLabels::new(n);
        let uf_ref = &uf;
        device.launch(n - 1, |i| {
            uf_ref.union(i as u32, i as u32 + 1);
        });
        uf.flatten(&device);
        assert_eq!(uf.count_sets(), 1);
        assert!(uf.snapshot().iter().all(|&l| l == 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn atomic_and_sequential_agree(
            n in 1usize..200,
            edges in proptest::collection::vec((0usize..200, 0usize..200), 0..400)
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(a, b)| ((a % n) as u32, (b % n) as u32))
                .collect();
            let uf = AtomicLabels::new(n);
            let mut dsu = SequentialDsu::new(n);
            for &(a, b) in &edges {
                uf.union(a, b);
                dsu.union(a, b);
            }
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(uf.same_set(a, b), dsu.same_set(a, b));
                }
            }
        }
    }
}
