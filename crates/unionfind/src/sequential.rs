//! Sequential disjoint-set (union by rank + full path compression).
//!
//! Used as the correctness oracle for [`crate::AtomicLabels`] and by the
//! host-side collision-matrix resolution of the CUDA-DClust baseline.

/// A classic sequential disjoint-set union structure.
#[derive(Clone, Debug)]
pub struct SequentialDsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl SequentialDsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `i` with full path compression.
    pub fn find(&mut self, i: u32) -> u32 {
        let mut root = i;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Second pass: point everything at the root.
        let mut walk = i;
        while walk != root {
            let next = self.parent[walk as usize];
            self.parent[walk as usize] = root;
            walk = next;
        }
        root
    }

    /// Merges the sets of `a` and `b` (union by rank). Returns `true` if
    /// two distinct sets were merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] < self.rank[rb as usize] { (rb, ra) } else { (ra, rb) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn count_sets(&mut self) -> usize {
        (0..self.parent.len() as u32).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_dsu_is_all_singletons() {
        let mut dsu = SequentialDsu::new(4);
        assert_eq!(dsu.count_sets(), 4);
        assert!(!dsu.same_set(0, 1));
    }

    #[test]
    fn union_and_transitivity() {
        let mut dsu = SequentialDsu::new(5);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2));
        assert!(dsu.same_set(0, 2));
        assert!(!dsu.same_set(0, 3));
        assert_eq!(dsu.count_sets(), 3);
    }

    #[test]
    fn path_compression_flattens() {
        let mut dsu = SequentialDsu::new(100);
        for i in 0..99 {
            dsu.union(i, i + 1);
        }
        let root = dsu.find(99);
        // After find, the chain should point directly at the root.
        assert_eq!(dsu.parent[99], root);
        assert_eq!(dsu.count_sets(), 1);
    }

    #[test]
    fn empty_dsu() {
        let mut dsu = SequentialDsu::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.count_sets(), 0);
    }
}
