//! Phase-level checkpoint/resume for pipeline runs.
//!
//! Every algorithm in the workspace runs as a short sequence of batched
//! phases (build index → determine cores → cluster cores → cluster
//! borders). Each phase boundary is a natural resume point: the phase
//! output (a BVH, a dense-cell grid, union-find parents, core flags) is
//! a plain value that can be serialized with [`crate::json`] and
//! restored into an equivalent run later. This module provides:
//!
//! * [`Checkpointable`] — types that can round-trip through a [`Json`]
//!   snapshot, tagged with a `KIND` string so a checkpoint is
//!   self-describing;
//! * [`PipelineCheckpoint`] — an ordered map of named phase outputs for
//!   one run, fingerprinted against the run's input so a stale
//!   checkpoint is never resumed against different data;
//! * a byte format with a length + FNV-1a checksum header
//!   ([`PipelineCheckpoint::to_bytes`]) so a truncated or corrupted
//!   checkpoint is *detected and discarded* instead of resumed;
//! * an optional on-disk store keyed by the `FDBSCAN_CKPT_DIR`
//!   environment variable;
//! * [`RunManifest`] — the companion record (seed, params, fault plan,
//!   per-phase content hashes) that makes a failed run replayable
//!   bit-for-bit on a sequential device.
//!
//! The checkpoint only carries *phase outputs*, never device state:
//! resuming replays the remaining phases on a fresh device, so counters
//! and traces of a resumed run reflect only the work actually redone.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::fault::FaultPlan;
use crate::json::{self, Json};

/// Magic tag opening every serialized checkpoint.
const MAGIC: &str = "FDBSCANCKPT";
/// Byte-format version.
const VERSION: u32 = 1;

/// Errors from snapshot encoding, decoding, or the on-disk store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream or JSON payload is malformed, truncated, or
    /// fails its checksum.
    Corrupt(String),
    /// A phase entry exists but its `kind` tag does not match the
    /// requested type.
    KindMismatch {
        /// Phase name that was looked up.
        phase: String,
        /// Kind the caller expected.
        expected: &'static str,
        /// Kind recorded in the checkpoint.
        found: String,
    },
    /// Filesystem error from the on-disk store.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            SnapshotError::KindMismatch { phase, expected, found } => {
                write!(f, "phase '{phase}' holds kind '{found}', expected '{expected}'")
            }
            SnapshotError::Io(why) => write!(f, "checkpoint io: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Atomically replaces `path` with `bytes`: write a uniquely named
/// temporary sibling, then rename over the target. The tmp name mixes
/// the process id with a process-wide sequence number so concurrent
/// writers (service requests checkpointing into one `FDBSCAN_CKPT_DIR`)
/// never share a tmp file; a kill mid-write leaves at worst a stray
/// `.tmp`, never a torn target for resume to trip over.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("snapshot");
    let tmp = path.with_file_name(format!("{file_name}.{}.{seq}.tmp", std::process::id()));
    std::fs::write(&tmp, bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        SnapshotError::Io(e.to_string())
    })
}

/// FNV-1a 64-bit hash — the integrity checksum of the byte format and
/// the per-phase content hash of [`RunManifest`]. Small, dependency-free
/// and stable across platforms.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A type that can be captured into and restored from a [`Json`]
/// snapshot.
///
/// `KIND` is a stable tag stored next to the data; restoring checks it
/// so a checkpoint recorded by one phase is never decoded as another
/// type.
pub trait Checkpointable: Sized {
    /// Stable type tag recorded with every snapshot of this type.
    const KIND: &'static str;

    /// Captures the value as a JSON tree.
    fn to_snapshot(&self) -> Json;

    /// Restores a value from a JSON tree produced by
    /// [`Checkpointable::to_snapshot`].
    fn from_snapshot(snapshot: &Json) -> Result<Self, SnapshotError>;
}

// ---------------------------------------------------------------------
// Encoding helpers shared by `Checkpointable` impls across the
// workspace. Floats are stored as raw bit patterns so every value —
// including infinities in degenerate bounds — round-trips exactly.
// ---------------------------------------------------------------------

/// Encodes a `u32` slice as a JSON array.
pub fn u32s_to_json(values: &[u32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::U64(v as u64)).collect())
}

/// Decodes a JSON array into a `u32` vector.
pub fn json_to_u32s(value: &Json) -> Result<Vec<u32>, SnapshotError> {
    let items = value.as_arr().ok_or_else(|| corrupt("expected a u32 array"))?;
    items
        .iter()
        .map(|item| match item {
            Json::U64(v) if *v <= u32::MAX as u64 => Ok(*v as u32),
            _ => Err(corrupt("u32 array holds a non-u32 entry")),
        })
        .collect()
}

/// Encodes a `u64` slice as a JSON array.
pub fn u64s_to_json(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::U64(v)).collect())
}

/// Decodes a JSON array into a `u64` vector.
pub fn json_to_u64s(value: &Json) -> Result<Vec<u64>, SnapshotError> {
    let items = value.as_arr().ok_or_else(|| corrupt("expected a u64 array"))?;
    items
        .iter()
        .map(|item| match item {
            Json::U64(v) => Ok(*v),
            _ => Err(corrupt("u64 array holds a non-u64 entry")),
        })
        .collect()
}

/// Encodes an `i64` slice as a JSON array.
pub fn i64s_to_json(values: &[i64]) -> Json {
    Json::Arr(
        values.iter().map(|&v| if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }).collect(),
    )
}

/// Decodes a JSON array into an `i64` vector.
pub fn json_to_i64s(value: &Json) -> Result<Vec<i64>, SnapshotError> {
    let items = value.as_arr().ok_or_else(|| corrupt("expected an i64 array"))?;
    items
        .iter()
        .map(|item| match item {
            Json::U64(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            Json::I64(v) => Ok(*v),
            _ => Err(corrupt("i64 array holds a non-i64 entry")),
        })
        .collect()
}

/// Encodes an `f32` slice as a JSON array of raw bit patterns
/// (exact round-trip, non-finite values included).
pub fn f32s_to_json(values: &[f32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::U64(v.to_bits() as u64)).collect())
}

/// Decodes a JSON array of raw bit patterns into an `f32` vector.
pub fn json_to_f32s(value: &Json) -> Result<Vec<f32>, SnapshotError> {
    Ok(json_to_u32s(value)?.into_iter().map(f32::from_bits).collect())
}

/// Encodes a `bool` slice as a JSON array.
pub fn bools_to_json(values: &[bool]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Bool(v)).collect())
}

/// Decodes a JSON array into a `bool` vector.
pub fn json_to_bools(value: &Json) -> Result<Vec<bool>, SnapshotError> {
    let items = value.as_arr().ok_or_else(|| corrupt("expected a bool array"))?;
    items
        .iter()
        .map(|item| match item {
            Json::Bool(v) => Ok(*v),
            _ => Err(corrupt("bool array holds a non-bool entry")),
        })
        .collect()
}

/// Extracts a required `u64` field of an object.
pub fn req_u64(value: &Json, key: &str) -> Result<u64, SnapshotError> {
    match value.get(key) {
        Some(Json::U64(v)) => Ok(*v),
        _ => Err(corrupt(&format!("missing u64 field '{key}'"))),
    }
}

/// Extracts a required string field of an object.
pub fn req_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(&format!("missing string field '{key}'")))
}

/// Extracts a required field of an object.
pub fn req_field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    value.get(key).ok_or_else(|| corrupt(&format!("missing field '{key}'")))
}

fn corrupt(why: &str) -> SnapshotError {
    SnapshotError::Corrupt(why.to_string())
}

/// A counters snapshot is itself checkpointable — recorded so a
/// resumed run can report cumulative work across the interrupted and
/// resumed halves.
impl Checkpointable for crate::CountersSnapshot {
    const KIND: &'static str = "device.counters";

    fn to_snapshot(&self) -> Json {
        Json::obj([
            ("kernel_launches", Json::U64(self.kernel_launches)),
            ("distance_computations", Json::U64(self.distance_computations)),
            ("bvh_nodes_visited", Json::U64(self.bvh_nodes_visited)),
            ("wide_nodes_visited", Json::U64(self.wide_nodes_visited)),
            ("wide_leaf_lanes", Json::U64(self.wide_leaf_lanes)),
            ("unions", Json::U64(self.unions)),
            ("finds", Json::U64(self.finds)),
            ("label_cas", Json::U64(self.label_cas)),
            ("neighbors_found", Json::U64(self.neighbors_found)),
            ("dense_box_scans", Json::U64(self.dense_box_scans)),
            ("reservations", Json::U64(self.reservations)),
            ("batched_stages", Json::U64(self.batched_stages)),
            ("failed_launches", Json::U64(self.failed_launches)),
            ("injected_oom", Json::U64(self.injected_oom)),
            ("injected_panics", Json::U64(self.injected_panics)),
            ("injected_stalls", Json::U64(self.injected_stalls)),
            ("injected_rank_faults", Json::U64(self.injected_rank_faults)),
            ("injected_message_faults", Json::U64(self.injected_message_faults)),
            ("injected_rank_deaths", Json::U64(self.injected_rank_deaths)),
        ])
    }

    fn from_snapshot(snapshot: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            kernel_launches: req_u64(snapshot, "kernel_launches")?,
            distance_computations: req_u64(snapshot, "distance_computations")?,
            bvh_nodes_visited: req_u64(snapshot, "bvh_nodes_visited")?,
            // Wide counters postdate the snapshot format: absent in
            // checkpoints written before the wide layout means zero.
            wide_nodes_visited: req_u64(snapshot, "wide_nodes_visited").unwrap_or(0),
            wide_leaf_lanes: req_u64(snapshot, "wide_leaf_lanes").unwrap_or(0),
            unions: req_u64(snapshot, "unions")?,
            finds: req_u64(snapshot, "finds")?,
            label_cas: req_u64(snapshot, "label_cas")?,
            neighbors_found: req_u64(snapshot, "neighbors_found")?,
            dense_box_scans: req_u64(snapshot, "dense_box_scans")?,
            reservations: req_u64(snapshot, "reservations")?,
            batched_stages: req_u64(snapshot, "batched_stages")?,
            failed_launches: req_u64(snapshot, "failed_launches")?,
            injected_oom: req_u64(snapshot, "injected_oom")?,
            injected_panics: req_u64(snapshot, "injected_panics")?,
            injected_stalls: req_u64(snapshot, "injected_stalls")?,
            injected_rank_faults: req_u64(snapshot, "injected_rank_faults")?,
            injected_message_faults: req_u64(snapshot, "injected_message_faults")?,
            injected_rank_deaths: req_u64(snapshot, "injected_rank_deaths")?,
        })
    }
}

/// Named phase outputs of one pipeline run, in completion order.
///
/// A checkpoint is created empty with the run's `algorithm` name and an
/// input `fingerprint` (hash of the points and parameters — see
/// `fdbscan::checkpoint::run_fingerprint`). Phases [`record`] their
/// output as they complete; a `run_from` entry point [`restore`]s
/// completed phases and re-executes only the rest. A fingerprint
/// mismatch means the checkpoint belongs to a different input and must
/// be discarded, never resumed.
///
/// [`record`]: PipelineCheckpoint::record
/// [`restore`]: PipelineCheckpoint::restore
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineCheckpoint {
    algorithm: String,
    fingerprint: u64,
    phases: Vec<PhaseEntry>,
}

#[derive(Clone, Debug, PartialEq)]
struct PhaseEntry {
    name: String,
    kind: String,
    data: Json,
}

impl PipelineCheckpoint {
    /// Creates an empty checkpoint for a run of `algorithm` over input
    /// with the given `fingerprint`.
    pub fn new(algorithm: impl Into<String>, fingerprint: u64) -> Self {
        Self { algorithm: algorithm.into(), fingerprint, phases: Vec::new() }
    }

    /// The algorithm this checkpoint belongs to.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The input fingerprint the checkpoint was recorded against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no phase has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Recorded phase names, in completion order.
    pub fn phase_names(&self) -> Vec<&str> {
        self.phases.iter().map(|p| p.name.as_str()).collect()
    }

    /// Whether a phase output named `name` is recorded.
    pub fn has_phase(&self, name: &str) -> bool {
        self.phases.iter().any(|p| p.name == name)
    }

    /// Records (or replaces) the output of phase `name`.
    pub fn record<T: Checkpointable>(&mut self, name: &str, value: &T) {
        self.record_raw(name, T::KIND, value.to_snapshot());
    }

    /// Records a phase output from its raw parts.
    pub fn record_raw(&mut self, name: &str, kind: &str, data: Json) {
        let entry = PhaseEntry { name: name.to_string(), kind: kind.to_string(), data };
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(slot) => *slot = entry,
            None => self.phases.push(entry),
        }
    }

    /// Restores the output of phase `name`, or `None` when the phase is
    /// absent. An entry of the wrong kind or with undecodable data is
    /// treated as absent — resume semantics discard what cannot be
    /// trusted and recompute instead. Use [`PipelineCheckpoint::decode`]
    /// when the failure reason matters.
    pub fn restore<T: Checkpointable>(&self, name: &str) -> Option<T> {
        self.decode(name).and_then(Result::ok)
    }

    /// Decodes the output of phase `name`, reporting why decoding
    /// failed (kind mismatch, corrupt data). `None` when absent.
    pub fn decode<T: Checkpointable>(&self, name: &str) -> Option<Result<T, SnapshotError>> {
        let entry = self.phases.iter().find(|p| p.name == name)?;
        if entry.kind != T::KIND {
            return Some(Err(SnapshotError::KindMismatch {
                phase: name.to_string(),
                expected: T::KIND,
                found: entry.kind.clone(),
            }));
        }
        Some(T::from_snapshot(&entry.data))
    }

    /// Content hash (FNV-1a 64 over kind + serialized data) of phase
    /// `name`. The manifest records these so a replay can verify it
    /// reproduced each phase bit-identically.
    pub fn phase_hash(&self, name: &str) -> Option<u64> {
        let entry = self.phases.iter().find(|p| p.name == name)?;
        let mut material = entry.kind.clone();
        material.push('\0');
        material.push_str(&entry.data.to_compact());
        Some(fnv1a_64(material.as_bytes()))
    }

    /// All `(phase name, content hash)` pairs in completion order.
    pub fn phase_hashes(&self) -> Vec<(String, u64)> {
        self.phases
            .iter()
            .map(|p| (p.name.clone(), self.phase_hash(&p.name).unwrap_or(0)))
            .collect()
    }

    /// Keeps only the first `keep` phases — the chaos harness uses this
    /// to simulate a run killed at an arbitrary phase boundary.
    pub fn truncate_to(&mut self, keep: usize) {
        self.phases.truncate(keep);
    }

    /// Removes the recorded output of phase `name`, if any.
    pub fn remove_phase(&mut self, name: &str) {
        self.phases.retain(|p| p.name != name);
    }

    /// The checkpoint as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", Json::str(self.algorithm.clone())),
            ("fingerprint", Json::U64(self.fingerprint)),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("name", Json::str(p.name.clone())),
                                ("kind", Json::str(p.kind.clone())),
                                ("data", p.data.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a checkpoint from its JSON tree.
    pub fn from_json(value: &Json) -> Result<Self, SnapshotError> {
        let algorithm = req_str(value, "algorithm")?.to_string();
        let fingerprint = req_u64(value, "fingerprint")?;
        let raw = req_field(value, "phases")?
            .as_arr()
            .ok_or_else(|| corrupt("'phases' is not an array"))?;
        let mut phases = Vec::with_capacity(raw.len());
        for entry in raw {
            phases.push(PhaseEntry {
                name: req_str(entry, "name")?.to_string(),
                kind: req_str(entry, "kind")?.to_string(),
                data: req_field(entry, "data")?.clone(),
            });
        }
        Ok(Self { algorithm, fingerprint, phases })
    }

    /// Serializes to the on-disk byte format: a one-line header
    /// `FDBSCANCKPT <version> <payload-len> <fnv1a-64 hex>` followed by
    /// the compact JSON payload. The length and checksum let
    /// [`PipelineCheckpoint::from_bytes`] reject truncation and
    /// corruption before any payload is trusted.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.to_json().to_compact();
        let header =
            format!("{MAGIC} {VERSION} {} {:016x}\n", payload.len(), fnv1a_64(payload.as_bytes()));
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(payload.as_bytes());
        bytes
    }

    /// Parses the byte format, verifying magic, version, length and
    /// checksum before decoding the payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let newline =
            bytes.iter().position(|&b| b == b'\n').ok_or_else(|| corrupt("missing header line"))?;
        let header =
            std::str::from_utf8(&bytes[..newline]).map_err(|_| corrupt("header is not UTF-8"))?;
        let mut fields = header.split_ascii_whitespace();
        if fields.next() != Some(MAGIC) {
            return Err(corrupt("bad magic"));
        }
        let version: u32 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| corrupt("bad version field"))?;
        if version != VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let len: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| corrupt("bad length field"))?;
        let checksum = fields
            .next()
            .and_then(|f| u64::from_str_radix(f, 16).ok())
            .ok_or_else(|| corrupt("bad checksum field"))?;
        if fields.next().is_some() {
            return Err(corrupt("trailing header fields"));
        }
        let payload = &bytes[newline + 1..];
        if payload.len() != len {
            return Err(corrupt(&format!(
                "payload length {} does not match header {len} (truncated?)",
                payload.len()
            )));
        }
        if fnv1a_64(payload) != checksum {
            return Err(corrupt("checksum mismatch"));
        }
        let text = std::str::from_utf8(payload).map_err(|_| corrupt("payload is not UTF-8"))?;
        let value = json::parse(text).map_err(|e| corrupt(&format!("payload parse: {e}")))?;
        Self::from_json(&value)
    }

    /// Canonical file name of this checkpoint in a checkpoint
    /// directory: `<algorithm>-<fingerprint>.ckpt`.
    pub fn file_name(&self) -> String {
        Self::file_name_for(&self.algorithm, self.fingerprint)
    }

    /// File name for a checkpoint of `algorithm` over input
    /// `fingerprint`.
    pub fn file_name_for(algorithm: &str, fingerprint: u64) -> String {
        format!("{algorithm}-{fingerprint:016x}.ckpt")
    }

    /// Writes the checkpoint into `dir` (created if missing) under its
    /// canonical file name, atomically (unique temporary file + rename,
    /// see [`write_atomic`]) so a crash mid-write leaves either the old
    /// checkpoint or none, even with concurrent writers in one dir.
    pub fn save_to_dir(&self, dir: &Path) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let path = dir.join(self.file_name());
        write_atomic(&path, &self.to_bytes())?;
        Ok(path)
    }

    /// Loads the checkpoint of `algorithm` over `fingerprint` from
    /// `dir`. A missing file yields `Ok(None)`; a truncated or corrupt
    /// file is **deleted** and also yields `Ok(None)` — a bad
    /// checkpoint must never be resumed, and keeping it would make
    /// every later run re-reject it.
    pub fn load_from_dir(
        dir: &Path,
        algorithm: &str,
        fingerprint: u64,
    ) -> Result<Option<Self>, SnapshotError> {
        let path = dir.join(Self::file_name_for(algorithm, fingerprint));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SnapshotError::Io(e.to_string())),
        };
        match Self::from_bytes(&bytes) {
            Ok(ckpt) if ckpt.fingerprint == fingerprint => Ok(Some(ckpt)),
            // Wrong fingerprint or corrupt: discard the file.
            _ => {
                let _ = std::fs::remove_file(&path);
                Ok(None)
            }
        }
    }

    /// The checkpoint directory configured via `FDBSCAN_CKPT_DIR`, if
    /// any.
    pub fn env_dir() -> Option<PathBuf> {
        std::env::var_os("FDBSCAN_CKPT_DIR").map(PathBuf::from)
    }

    /// Persists the checkpoint to the `FDBSCAN_CKPT_DIR` directory.
    /// Returns the written path, or `None` when the variable is unset
    /// (persistence is opt-in). IO errors are reported, not swallowed.
    pub fn persist(&self) -> Result<Option<PathBuf>, SnapshotError> {
        match Self::env_dir() {
            Some(dir) => self.save_to_dir(&dir).map(Some),
            None => Ok(None),
        }
    }

    /// Loads a persisted checkpoint from `FDBSCAN_CKPT_DIR`, if the
    /// variable is set and a valid checkpoint for `(algorithm,
    /// fingerprint)` exists. Corrupt files are discarded (see
    /// [`PipelineCheckpoint::load_from_dir`]).
    pub fn load_persisted(algorithm: &str, fingerprint: u64) -> Option<Self> {
        let dir = Self::env_dir()?;
        Self::load_from_dir(&dir, algorithm, fingerprint).ok().flatten()
    }
}

/// Everything needed to re-execute a run for debugging: the dataset
/// seed and shape, the parameters, the device geometry, the fault plan
/// that killed it, and the content hash of every phase the run
/// completed. Written alongside a checkpoint; `examples/replay_run.rs`
/// reconstructs the run from it and verifies each replayed phase hash
/// matches bit-for-bit (on a sequential device, where execution order
/// is deterministic).
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Caller-chosen identifier, used as the manifest file stem.
    pub run_id: String,
    /// Algorithm name (matches the checkpoint's).
    pub algorithm: String,
    /// Dataset dimensionality.
    pub dims: u64,
    /// Number of points.
    pub n: u64,
    /// `eps` as raw f32 bits (exact).
    pub eps_bits: u32,
    /// `minpts`.
    pub minpts: u64,
    /// Seed the dataset was generated from.
    pub data_seed: u64,
    /// Input fingerprint (matches the checkpoint's).
    pub fingerprint: u64,
    /// Device worker count (0 = sequential).
    pub workers: usize,
    /// Device block size.
    pub block_size: usize,
    /// The fault plan active during the run, if any.
    pub fault_plan: Option<FaultPlan>,
    /// `(phase name, content hash)` of every completed phase.
    pub phase_hashes: Vec<(String, u64)>,
}

impl RunManifest {
    /// The `eps` value this manifest records.
    pub fn eps(&self) -> f32 {
        f32::from_bits(self.eps_bits)
    }

    /// The manifest as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("run_id", Json::str(self.run_id.clone())),
            ("algorithm", Json::str(self.algorithm.clone())),
            ("dims", Json::U64(self.dims)),
            ("n", Json::U64(self.n)),
            ("eps_bits", Json::U64(self.eps_bits as u64)),
            ("eps", Json::f32(self.eps())),
            ("minpts", Json::U64(self.minpts)),
            ("data_seed", Json::U64(self.data_seed)),
            ("fingerprint", Json::U64(self.fingerprint)),
            ("workers", Json::U64(self.workers as u64)),
            ("block_size", Json::U64(self.block_size as u64)),
            (
                "fault_plan",
                match &self.fault_plan {
                    Some(plan) => plan.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "phase_hashes",
                Json::Obj(
                    self.phase_hashes
                        .iter()
                        .map(|(name, hash)| (name.clone(), Json::U64(*hash)))
                        .collect::<BTreeMap<_, _>>(),
                ),
            ),
            (
                "phase_order",
                Json::Arr(
                    self.phase_hashes.iter().map(|(name, _)| Json::str(name.clone())).collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a manifest from its JSON tree.
    pub fn from_json(value: &Json) -> Result<Self, SnapshotError> {
        let eps_bits = req_u64(value, "eps_bits")?;
        if eps_bits > u32::MAX as u64 {
            return Err(corrupt("eps_bits exceeds 32 bits"));
        }
        let fault_plan = match req_field(value, "fault_plan")? {
            Json::Null => None,
            plan => Some(FaultPlan::from_json(plan).map_err(|e| corrupt(&e))?),
        };
        let hashes = req_field(value, "phase_hashes")?;
        let order = req_field(value, "phase_order")?
            .as_arr()
            .ok_or_else(|| corrupt("'phase_order' is not an array"))?;
        let mut phase_hashes = Vec::with_capacity(order.len());
        for name in order {
            let name = name.as_str().ok_or_else(|| corrupt("phase name is not a string"))?;
            phase_hashes.push((name.to_string(), req_u64(hashes, name)?));
        }
        Ok(Self {
            run_id: req_str(value, "run_id")?.to_string(),
            algorithm: req_str(value, "algorithm")?.to_string(),
            dims: req_u64(value, "dims")?,
            n: req_u64(value, "n")?,
            eps_bits: eps_bits as u32,
            minpts: req_u64(value, "minpts")?,
            data_seed: req_u64(value, "data_seed")?,
            fingerprint: req_u64(value, "fingerprint")?,
            workers: req_u64(value, "workers")? as usize,
            block_size: req_u64(value, "block_size")? as usize,
            fault_plan,
            phase_hashes,
        })
    }

    /// Pretty-printed manifest — what a failing chaos test prints so
    /// the scenario can be replayed locally.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty(2)
    }

    /// Writes the manifest into `dir` as `<run_id>.manifest.json`,
    /// atomically (see [`write_atomic`]) — a manifest is what makes a
    /// failed run replayable, so it gets the same torn-write protection
    /// as the checkpoint it accompanies.
    pub fn save_to_dir(&self, dir: &Path) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let path = dir.join(format!("{}.manifest.json", self.run_id));
        write_atomic(&path, self.to_pretty().as_bytes())?;
        Ok(path)
    }

    /// Loads `<run_id>.manifest.json` from `dir`.
    pub fn load_from_dir(dir: &Path, run_id: &str) -> Result<Self, SnapshotError> {
        let path = dir.join(format!("{run_id}.manifest.json"));
        let text = std::fs::read_to_string(&path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let value = json::parse(&text).map_err(|e| corrupt(&format!("manifest parse: {e}")))?;
        Self::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Flags(Vec<bool>);

    impl Checkpointable for Flags {
        const KIND: &'static str = "test.flags";

        fn to_snapshot(&self) -> Json {
            bools_to_json(&self.0)
        }

        fn from_snapshot(snapshot: &Json) -> Result<Self, SnapshotError> {
            json_to_bools(snapshot).map(Flags)
        }
    }

    #[derive(Debug, PartialEq)]
    struct Labels(Vec<u32>);

    impl Checkpointable for Labels {
        const KIND: &'static str = "test.labels";

        fn to_snapshot(&self) -> Json {
            u32s_to_json(&self.0)
        }

        fn from_snapshot(snapshot: &Json) -> Result<Self, SnapshotError> {
            json_to_u32s(snapshot).map(Labels)
        }
    }

    fn sample() -> PipelineCheckpoint {
        let mut ckpt = PipelineCheckpoint::new("fdbscan", 0xdead_beef);
        ckpt.record("preprocess", &Flags(vec![true, false, true]));
        ckpt.record("main", &Labels(vec![0, 0, 2]));
        ckpt
    }

    #[test]
    fn record_restore_round_trip() {
        let ckpt = sample();
        assert_eq!(ckpt.len(), 2);
        assert!(ckpt.has_phase("preprocess"));
        assert!(!ckpt.has_phase("index"));
        assert_eq!(ckpt.restore::<Flags>("preprocess"), Some(Flags(vec![true, false, true])));
        assert_eq!(ckpt.restore::<Labels>("main"), Some(Labels(vec![0, 0, 2])));
        assert_eq!(ckpt.restore::<Labels>("absent"), None);
    }

    #[test]
    fn kind_mismatch_is_reported_and_discarded() {
        let ckpt = sample();
        // `restore` treats the wrong kind as absent…
        assert_eq!(ckpt.restore::<Labels>("preprocess"), None);
        // …while `decode` explains why.
        match ckpt.decode::<Labels>("preprocess") {
            Some(Err(SnapshotError::KindMismatch { expected, found, .. })) => {
                assert_eq!(expected, "test.labels");
                assert_eq!(found, "test.flags");
            }
            other => panic!("expected kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn re_recording_replaces_in_place() {
        let mut ckpt = sample();
        ckpt.record("preprocess", &Flags(vec![false]));
        assert_eq!(ckpt.len(), 2);
        assert_eq!(ckpt.phase_names(), vec!["preprocess", "main"]);
        assert_eq!(ckpt.restore::<Flags>("preprocess"), Some(Flags(vec![false])));
    }

    #[test]
    fn byte_format_round_trips() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        assert_eq!(PipelineCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                PipelineCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be detected"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20; // flip a bit inside the payload
        match PipelineCheckpoint::from_bytes(&bytes) {
            Err(SnapshotError::Corrupt(why)) => {
                assert!(why.contains("checksum") || why.contains("parse"), "got: {why}")
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let bytes = sample().to_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(PipelineCheckpoint::from_bytes(&bad_magic).is_err());
        // Declared length longer than the actual payload (truncation).
        let text = String::from_utf8(bytes).unwrap();
        let inflated =
            text.replacen(&format!(" {} ", sample().to_json().to_compact().len()), " 999999 ", 1);
        assert!(PipelineCheckpoint::from_bytes(inflated.as_bytes()).is_err());
    }

    #[test]
    fn phase_hashes_are_content_hashes() {
        let ckpt = sample();
        let h1 = ckpt.phase_hash("preprocess").unwrap();
        let mut changed = ckpt.clone();
        changed.record("preprocess", &Flags(vec![true, true, true]));
        assert_ne!(changed.phase_hash("preprocess").unwrap(), h1);
        assert_eq!(ckpt.phase_hashes().len(), 2);
    }

    #[test]
    fn truncate_to_simulates_partial_runs() {
        let mut ckpt = sample();
        ckpt.truncate_to(1);
        assert_eq!(ckpt.phase_names(), vec!["preprocess"]);
        ckpt.truncate_to(0);
        assert!(ckpt.is_empty());
    }

    #[test]
    fn disk_store_discards_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("fdbscan-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = sample();
        let path = ckpt.save_to_dir(&dir).unwrap();
        assert_eq!(
            PipelineCheckpoint::load_from_dir(&dir, "fdbscan", 0xdead_beef).unwrap(),
            Some(ckpt.clone())
        );
        // Truncate the file on disk: load must discard it (and delete).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(PipelineCheckpoint::load_from_dir(&dir, "fdbscan", 0xdead_beef).unwrap(), None);
        assert!(!path.exists(), "corrupt checkpoint must be deleted");
        // Missing file is a clean miss.
        assert_eq!(PipelineCheckpoint::load_from_dir(&dir, "fdbscan", 1).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_saves_never_tear_the_checkpoint() {
        // Many threads rewriting the same checkpoint file: every load
        // observed in between must be a complete, checksum-valid file
        // (the unique-tmp + rename discipline at work).
        let dir = std::env::temp_dir().join(format!("fdbscan-ckpt-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = sample();
        ckpt.save_to_dir(&dir).unwrap();
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let ckpt = ckpt.clone();
                let dir = dir.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        ckpt.save_to_dir(&dir).unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..100 {
            let loaded = PipelineCheckpoint::load_from_dir(&dir, "fdbscan", 0xdead_beef).unwrap();
            assert_eq!(loaded, Some(ckpt.clone()), "reader saw a torn or missing checkpoint");
        }
        for w in writers {
            w.join().unwrap();
        }
        // No stray tmp files once all writers have renamed.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_save_is_atomic_and_loadable() {
        let dir =
            std::env::temp_dir().join(format!("fdbscan-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = RunManifest {
            run_id: "atomic-1".to_string(),
            algorithm: "fdbscan".to_string(),
            dims: 2,
            n: 100,
            eps_bits: 0.1f32.to_bits(),
            minpts: 4,
            data_seed: 7,
            fingerprint: 0x1234,
            workers: 2,
            block_size: 64,
            fault_plan: None,
            phase_hashes: vec![("index".to_string(), 1)],
        };
        let path = manifest.save_to_dir(&dir).unwrap();
        assert_eq!(RunManifest::load_from_dir(&dir, "atomic-1").unwrap(), manifest);
        // Overwrite goes through the same rename path.
        manifest.save_to_dir(&dir).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_with_fault_plan() {
        let manifest = RunManifest {
            run_id: "chaos-7".to_string(),
            algorithm: "densebox".to_string(),
            dims: 2,
            n: 400,
            eps_bits: 0.05f32.to_bits(),
            minpts: 4,
            data_seed: 99,
            fingerprint: 0xabcd,
            workers: 0,
            block_size: 64,
            fault_plan: Some(FaultPlan::new(7).with_kernel_panic_at(12, 0).with_rank_failure(1, 2)),
            phase_hashes: vec![("index".to_string(), 11), ("preprocess".to_string(), 22)],
        };
        let text = manifest.to_pretty();
        let parsed = RunManifest::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.eps(), 0.05);
    }

    #[test]
    fn counters_snapshot_round_trips() {
        let snap = crate::CountersSnapshot {
            kernel_launches: 3,
            distance_computations: 1000,
            ..Default::default()
        };
        let restored = crate::CountersSnapshot::from_snapshot(&snap.to_snapshot()).unwrap();
        assert_eq!(restored.kernel_launches, 3);
        assert_eq!(restored.distance_computations, 1000);
    }
}
