//! Lock-light metrics: counters, gauges, histograms, Prometheus text.
//!
//! The service front-end needs production telemetry — request rates by
//! outcome, latency distributions, device occupancy — without taxing
//! the kernel hot path. This registry follows the same discipline as
//! [`crate::trace::Tracer`]:
//!
//! * **One-atomic-load disabled path.** Every instrument handle
//!   ([`Counter`], [`Gauge`], [`MetricHistogram`]) shares the registry's
//!   enabled flag; a disabled `inc()`/`set()`/`observe()` is exactly one
//!   relaxed atomic load and a branch.
//! * **Lock-free recording.** Enabled updates are relaxed atomic RMWs.
//!   Histograms reuse the 64-bucket log2 scheme of
//!   [`crate::trace::Histogram`], so recording is four relaxed RMWs and
//!   quantiles come from [`crate::trace::HistogramSnapshot`]'s
//!   log-linear interpolation.
//! * **Cold registration.** Creating or looking up an instrument takes
//!   the registry mutex — done once per instrument at service
//!   construction (or once per label value, e.g. per tenant), never per
//!   request-hot operation.
//!
//! # Exposition
//!
//! [`MetricsRegistry::render_prometheus`] writes the Prometheus text
//! format (`# HELP`/`# TYPE` lines, cumulative `_bucket{le="…"}`
//! histogram series) by hand, like [`crate::json`] — no serialization
//! dependency. [`validate_exposition`] is the matching strict checker
//! CI runs against rendered output. [`MetricsRegistry::to_json`]
//! produces a JSON snapshot (with interpolated p50/p95/p99 per
//! histogram) for bench reports.
//!
//! Setting `FDBSCAN_METRICS_DUMP=<path>` enables a service's registry
//! and makes it write the final exposition there at teardown (see
//! [`dump_path`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::Json;
use crate::trace::{Histogram, HistogramSnapshot};

/// Environment variable naming the end-of-process metrics dump file.
/// When set (non-empty), service registries start enabled and write
/// their final Prometheus exposition to the named path on teardown.
pub const METRICS_DUMP_ENV: &str = "FDBSCAN_METRICS_DUMP";

/// The dump file configured in the environment, if any.
pub fn dump_path() -> Option<std::path::PathBuf> {
    match std::env::var_os(METRICS_DUMP_ENV) {
        Some(path) if !path.is_empty() => Some(std::path::PathBuf::from(path)),
        _ => None,
    }
}

/// What a histogram's recorded values measure — drives unit conversion
/// in the Prometheus exposition (`le`/`_sum` of a `Seconds` histogram
/// are rendered in seconds although recording is in nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricUnit {
    /// Durations, recorded in nanoseconds, exposed in seconds.
    Seconds,
    /// Byte sizes, exposed raw.
    Bytes,
    /// Dimensionless counts, exposed raw.
    Count,
}

/// A monotonically increasing counter handle. Cheap to clone; clones
/// share the underlying value.
#[derive(Clone, Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1. One relaxed load (and nothing else) when disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed load (and nothing else) when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that goes up and down. Cheap to clone.
#[derive(Clone, Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value. One relaxed load (and nothing else) when disabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). One relaxed load when disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// `add(1)`.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// `add(-1)`.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram handle over the shared log2 bucket scheme. Cheap to
/// clone.
#[derive(Clone, Debug)]
pub struct MetricHistogram {
    enabled: Arc<AtomicBool>,
    histogram: Arc<Histogram>,
    unit: MetricUnit,
}

impl MetricHistogram {
    /// Records one value (nanoseconds for [`MetricUnit::Seconds`]
    /// histograms). One relaxed load (and nothing else) when disabled.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.histogram.record(value);
    }

    /// Records a duration (as nanoseconds, saturating).
    #[inline]
    pub fn observe_duration(&self, duration: std::time::Duration) {
        self.observe(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// The histogram's unit.
    pub fn unit(&self) -> MetricUnit {
        self.unit
    }

    /// Plain-value snapshot (for windowed quantiles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.histogram.snapshot()
    }

    /// Interpolated all-time `q`-quantile, in recorded units.
    pub fn quantile(&self, q: f64) -> u64 {
        self.histogram.quantile_estimate(q)
    }
}

/// One registered instrument: a name, optional `(key, value)` label
/// pair, and the shared value.
struct Registered {
    name: String,
    help: String,
    label: Option<(String, String)>,
    kind: Kind,
}

enum Kind {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(MetricUnit, Arc<Histogram>),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(..) => "histogram",
        }
    }
}

/// A registry of named instruments with a shared enabled flag.
///
/// Registration is idempotent: asking for the same `(name, label)`
/// again returns a handle to the same value (and panics on a kind
/// mismatch — that is a programming error, not a runtime condition).
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    instruments: Mutex<Vec<Registered>>,
}

impl MetricsRegistry {
    /// An empty registry; `enabled = false` makes every instrument a
    /// one-atomic-load no-op.
    pub fn new(enabled: bool) -> Self {
        Self { enabled: Arc::new(AtomicBool::new(enabled)), instruments: Mutex::new(Vec::new()) }
    }

    /// A registry enabled iff `FDBSCAN_METRICS_DUMP` names a dump file.
    pub fn from_env() -> Self {
        Self::new(dump_path().is_some())
    }

    /// Whether instruments record (one relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables every instrument of this registry at once.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.labeled(
            name,
            help,
            None,
            || Kind::Counter(Arc::new(AtomicU64::new(0))),
            |r| match &r.kind {
                Kind::Counter(v) => {
                    Counter { enabled: Arc::clone(&self.enabled), value: Arc::clone(v) }
                }
                _ => panic!("metric {name} already registered as a {}", r.kind.type_name()),
            },
        )
    }

    /// Registers (or finds) one series of a labeled counter family:
    /// `name{key="value"}`. Every series of a family must use the same
    /// label key.
    pub fn labeled_counter(&self, name: &str, help: &str, key: &str, value: &str) -> Counter {
        self.labeled(
            name,
            help,
            Some((key, value)),
            || Kind::Counter(Arc::new(AtomicU64::new(0))),
            |r| match &r.kind {
                Kind::Counter(v) => {
                    Counter { enabled: Arc::clone(&self.enabled), value: Arc::clone(v) }
                }
                _ => panic!("metric {name} already registered as a {}", r.kind.type_name()),
            },
        )
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.labeled(
            name,
            help,
            None,
            || Kind::Gauge(Arc::new(AtomicI64::new(0))),
            |r| match &r.kind {
                Kind::Gauge(v) => {
                    Gauge { enabled: Arc::clone(&self.enabled), value: Arc::clone(v) }
                }
                _ => panic!("metric {name} already registered as a {}", r.kind.type_name()),
            },
        )
    }

    /// Registers (or finds) a histogram with the given unit.
    pub fn histogram(&self, name: &str, help: &str, unit: MetricUnit) -> MetricHistogram {
        let enabled = Arc::clone(&self.enabled);
        let mut instruments = self.instruments.lock();
        if let Some(existing) = instruments.iter().find(|r| r.name == name && r.label.is_none()) {
            match &existing.kind {
                Kind::Histogram(u, h) => {
                    assert_eq!(*u, unit, "metric {name} re-registered with a different unit");
                    return MetricHistogram { enabled, histogram: Arc::clone(h), unit };
                }
                other => panic!("metric {name} already registered as a {}", other.type_name()),
            }
        }
        validate_name(name);
        let histogram = Arc::new(Histogram::default());
        instruments.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            label: None,
            kind: Kind::Histogram(unit, Arc::clone(&histogram)),
        });
        MetricHistogram { enabled, histogram, unit }
    }

    fn labeled<T>(
        &self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
        fresh: impl FnOnce() -> Kind,
        make: impl Fn(&Registered) -> T,
    ) -> T {
        let mut instruments = self.instruments.lock();
        if let Some(existing) = instruments.iter().find(|r| {
            r.name == name && r.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        }) {
            return make(existing);
        }
        validate_name(name);
        let kind = fresh();
        // A family's kind is fixed by its first series; `make` panics on
        // a mismatch with the requested kind below.
        if let Some(first) = instruments.iter().find(|r| r.name == name) {
            assert_eq!(
                std::mem::discriminant(&first.kind),
                std::mem::discriminant(&kind),
                "metric {name} already registered as a {}",
                first.kind.type_name()
            );
        }
        let registered = Registered {
            name: name.to_string(),
            help: help.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            kind,
        };
        let result = make(&registered);
        instruments.push(registered);
        result
    }

    /// Renders the Prometheus text exposition format: one `# HELP` and
    /// `# TYPE` block per family (first-registration order), histograms
    /// as cumulative `_bucket{le="…"}` series plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let instruments = self.instruments.lock();
        let mut out = String::new();
        let mut headers_done: Vec<&str> = Vec::new();
        for registered in instruments.iter() {
            if !headers_done.contains(&registered.name.as_str()) {
                headers_done.push(&registered.name);
                out.push_str(&format!("# HELP {} {}\n", registered.name, registered.help));
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    registered.name,
                    registered.kind.type_name()
                ));
                // Families render all series under the first header.
                for series in instruments.iter().filter(|r| r.name == registered.name) {
                    render_series(&mut out, series);
                }
            }
        }
        out
    }

    /// JSON snapshot of every instrument: counters/gauges by value,
    /// histograms with count/sum/max and interpolated p50/p95/p99 (in
    /// recorded units — nanoseconds for `Seconds` histograms).
    pub fn to_json(&self) -> Json {
        let instruments = self.instruments.lock();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for registered in instruments.iter() {
            let key = match &registered.label {
                Some((k, v)) => format!("{}{{{k}={v}}}", registered.name),
                None => registered.name.clone(),
            };
            match &registered.kind {
                Kind::Counter(v) => {
                    counters.insert(key, Json::U64(v.load(Ordering::Relaxed)));
                }
                Kind::Gauge(v) => {
                    gauges.insert(key, Json::I64(v.load(Ordering::Relaxed)));
                }
                Kind::Histogram(_, h) => {
                    let snapshot = h.snapshot();
                    histograms.insert(
                        key,
                        Json::obj([
                            ("count", Json::U64(snapshot.count())),
                            ("sum", Json::U64(snapshot.sum_ns())),
                            ("max", Json::U64(snapshot.max_ns())),
                            ("p50", Json::U64(snapshot.quantile(0.50))),
                            ("p95", Json::U64(snapshot.quantile(0.95))),
                            ("p99", Json::U64(snapshot.quantile(0.99))),
                        ]),
                    );
                }
            }
        }
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled())
            .field("instruments", &self.instruments.lock().len())
            .finish()
    }
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn labels_text(label: &Option<(String, String)>, extra: Option<(&str, String)>) -> String {
    let mut parts = Vec::new();
    if let Some((key, value)) = label {
        parts.push(format!("{key}=\"{}\"", escape_label(value)));
    }
    if let Some((key, value)) = extra {
        parts.push(format!("{key}=\"{value}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_series(out: &mut String, series: &Registered) {
    match &series.kind {
        Kind::Counter(v) => {
            let labels = labels_text(&series.label, None);
            out.push_str(&format!("{}{labels} {}\n", series.name, v.load(Ordering::Relaxed)));
        }
        Kind::Gauge(v) => {
            let labels = labels_text(&series.label, None);
            out.push_str(&format!("{}{labels} {}\n", series.name, v.load(Ordering::Relaxed)));
        }
        Kind::Histogram(unit, h) => {
            let snapshot = h.snapshot();
            let counts = snapshot.bucket_counts();
            let last_used = counts.iter().rposition(|&c| c > 0);
            let mut cumulative = 0u64;
            for (index, &count) in counts.iter().enumerate().take(last_used.map_or(0, |l| l + 1)) {
                cumulative += count;
                let upper = Histogram::bucket_range(index).1;
                let le = match unit {
                    MetricUnit::Seconds => format!("{}", upper as f64 / 1e9),
                    MetricUnit::Bytes | MetricUnit::Count => format!("{upper}"),
                };
                let labels = labels_text(&series.label, Some(("le", le)));
                out.push_str(&format!("{}_bucket{labels} {cumulative}\n", series.name));
            }
            let labels = labels_text(&series.label, Some(("le", "+Inf".to_string())));
            out.push_str(&format!("{}_bucket{labels} {}\n", series.name, snapshot.count()));
            let plain = labels_text(&series.label, None);
            let sum = match unit {
                MetricUnit::Seconds => format!("{}", snapshot.sum_ns() as f64 / 1e9),
                MetricUnit::Bytes | MetricUnit::Count => format!("{}", snapshot.sum_ns()),
            };
            out.push_str(&format!("{}_sum{plain} {sum}\n", series.name));
            out.push_str(&format!("{}_count{plain} {}\n", series.name, snapshot.count()));
        }
    }
}

/// Summary returned by a successful [`validate_exposition`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Distinct metric families (`# TYPE` lines).
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

/// Strictly validates a Prometheus text exposition: parseable sample
/// lines, exactly one `# TYPE` per family (before its samples), every
/// sample tied to a declared family, unique (name, labelset) samples,
/// finite non-negative counter values, and per-histogram invariants
/// (cumulative `_bucket` values non-decreasing in `le` order, a
/// terminal `le="+Inf"` bucket whose value equals `_count`).
///
/// Monotonicity of counters *over time* cannot be checked from one
/// scrape; non-negativity plus the cumulative-bucket check are the
/// single-exposition analogue.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: Vec<String> = Vec::new();
    let mut seen_samples: Vec<(String, String)> = Vec::new();
    // (base name, non-le labels) -> [(le, cumulative value)]
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut hist_sums: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;

    for (number, line) in text.lines().enumerate() {
        let lineno = number + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().ok_or(format!("line {lineno}: TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
            }
            if types.insert(name.clone(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default().to_string();
            if helps.contains(&name) {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            helps.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        let (name, labels, value_text) =
            split_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let value: f64 = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => {
                other.parse().map_err(|_| format!("line {lineno}: unparseable value {other:?}"))?
            }
        };
        if value.is_nan() {
            return Err(format!("line {lineno}: NaN sample value"));
        }
        let sample_key = (name.to_string(), labels.to_string());
        if seen_samples.contains(&sample_key) {
            return Err(format!("line {lineno}: duplicate sample {name}{labels}"));
        }
        seen_samples.push(sample_key);
        samples += 1;

        // Resolve the declaring family: exact name, or histogram base.
        let (base, suffix) = match types.get(name) {
            Some(_) => (name.to_string(), ""),
            None => {
                let stripped = ["_bucket", "_sum", "_count"]
                    .iter()
                    .find_map(|s| name.strip_suffix(s).map(|base| (base.to_string(), *s)));
                match stripped {
                    Some((base, suffix))
                        if types.get(&base).map(String::as_str) == Some("histogram") =>
                    {
                        (base, suffix)
                    }
                    _ => return Err(format!("line {lineno}: sample {name} has no TYPE line")),
                }
            }
        };
        let family_type = types.get(&base).cloned().unwrap_or_default();
        match family_type.as_str() {
            "counter" => {
                if !(value.is_finite() && value >= 0.0) {
                    return Err(format!("line {lineno}: counter {name} has value {value}"));
                }
            }
            "histogram" => {
                let (own_labels, le) =
                    partition_le(labels).map_err(|e| format!("line {lineno}: {e}"))?;
                match suffix {
                    "_bucket" => {
                        let le =
                            le.ok_or(format!("line {lineno}: {name} bucket without an le label"))?;
                        let le_value = match le.as_str() {
                            "+Inf" => f64::INFINITY,
                            other => other
                                .parse()
                                .map_err(|_| format!("line {lineno}: unparseable le {other:?}"))?,
                        };
                        buckets.entry((base, own_labels)).or_default().push((le_value, value));
                    }
                    "_count" => {
                        hist_counts.insert((base, own_labels), value);
                    }
                    "_sum" => hist_sums.push((base, own_labels)),
                    _ => {
                        return Err(format!(
                            "line {lineno}: bare sample {name} for a histogram family"
                        ))
                    }
                }
            }
            _ => {
                if !value.is_finite() {
                    return Err(format!("line {lineno}: non-finite gauge {name}"));
                }
            }
        }
    }

    for ((base, labels), series) in &buckets {
        let at = |what: &str| format!("histogram {base}{{{labels}}}: {what}");
        for window in series.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(at("bucket le values not strictly increasing"));
            }
            if window[1].1 < window[0].1 {
                return Err(at("cumulative bucket counts decreased"));
            }
        }
        let Some(&(last_le, last_value)) = series.last() else { continue };
        if !last_le.is_infinite() {
            return Err(at("missing terminal +Inf bucket"));
        }
        match hist_counts.get(&(base.clone(), labels.clone())) {
            Some(&count) if count == last_value => {}
            Some(&count) => return Err(at(&format!("_count {count} != +Inf bucket {last_value}"))),
            None => return Err(at("missing _count sample")),
        }
        if !hist_sums.contains(&(base.clone(), labels.clone())) {
            return Err(at("missing _sum sample"));
        }
    }

    for name in types.keys() {
        let has_sample = seen_samples.iter().any(|(sample, _)| {
            sample == name
                || (types[name] == "histogram"
                    && ["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|s| sample.as_str() == format!("{name}{s}")))
        });
        if !has_sample {
            return Err(format!("TYPE {name} declared but never sampled"));
        }
    }

    Ok(ExpositionStats { families: types.len(), samples })
}

/// Splits a sample line into `(name, labels-with-braces-or-empty,
/// value)`. Label values may contain escaped quotes.
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    let name_end = line.find(['{', ' ']).ok_or_else(|| format!("malformed sample {line:?}"))?;
    let name = &line[..name_end];
    if name.is_empty() {
        return Err(format!("malformed sample {line:?}"));
    }
    if line.as_bytes()[name_end] == b' ' {
        let value = line[name_end..].trim();
        if value.is_empty() || value.contains(' ') {
            return Err(format!("expected exactly one value in {line:?}"));
        }
        return Ok((name, "", value));
    }
    // Scan the label block respecting quotes and escapes.
    let bytes = line.as_bytes();
    let mut i = name_end + 1;
    let mut in_quotes = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1, // skip the escaped byte
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => {
                let labels = &line[name_end..=i];
                let value = line[i + 1..].trim();
                if value.is_empty() || value.contains(' ') {
                    return Err(format!("expected exactly one value in {line:?}"));
                }
                return Ok((name, labels, value));
            }
            _ => {}
        }
        i += 1;
    }
    Err(format!("unterminated label block in {line:?}"))
}

/// Splits a label block into (labels minus `le`, the `le` value).
fn partition_le(labels: &str) -> Result<(String, Option<String>), String> {
    let inner = labels.strip_prefix('{').and_then(|l| l.strip_suffix('}')).unwrap_or("");
    let mut kept = Vec::new();
    let mut le = None;
    for pair in split_label_pairs(inner)? {
        match pair.strip_prefix("le=") {
            Some(value) => le = Some(value.trim_matches('"').to_string()),
            None => kept.push(pair),
        }
    }
    Ok((kept.join(","), le))
}

/// Splits `k1="v1",k2="v2"` into pairs, respecting quoted commas.
fn split_label_pairs(inner: &str) -> Result<Vec<String>, String> {
    let mut pairs = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_quotes => {
                current.push(c);
                current.push(chars.next().ok_or("dangling escape in label block")?);
            }
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quote in label block".to_string());
    }
    if !current.is_empty() {
        pairs.push(current);
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_registry_records_nothing() {
        // The metrics analogue of the disabled-sink tracer test: with
        // the registry disabled, every instrument site costs one atomic
        // load and leaves no trace in the underlying values.
        let registry = MetricsRegistry::new(false);
        let counter = registry.counter("fdbscan_test_total", "test");
        let gauge = registry.gauge("fdbscan_test_gauge", "test");
        let histogram = registry.histogram("fdbscan_test_seconds", "test", MetricUnit::Seconds);
        counter.inc();
        counter.add(41);
        gauge.set(7);
        gauge.inc();
        histogram.observe(1000);
        histogram.observe_duration(Duration::from_millis(5));
        assert_eq!(counter.get(), 0);
        assert_eq!(gauge.get(), 0);
        assert_eq!(histogram.snapshot().count(), 0);
        // Flipping the flag arms every existing handle.
        registry.set_enabled(true);
        counter.inc();
        assert_eq!(counter.get(), 1);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let registry = MetricsRegistry::new(true);
        let a = registry.counter("fdbscan_requests_total", "requests");
        let b = registry.counter("fdbscan_requests_total", "requests");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name must alias the same value");
        let t1 = registry.labeled_counter("fdbscan_by_tenant_total", "per tenant", "tenant", "a");
        let t2 = registry.labeled_counter("fdbscan_by_tenant_total", "per tenant", "tenant", "b");
        t1.add(3);
        t2.add(5);
        assert_eq!((t1.get(), t2.get()), (3, 5), "label values are distinct series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new(true);
        registry.counter("fdbscan_thing", "x");
        registry.gauge("fdbscan_thing", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        MetricsRegistry::new(true).counter("0bad name", "x");
    }

    #[test]
    fn rendered_exposition_validates() {
        let registry = MetricsRegistry::new(true);
        registry.counter("fdbscan_requests_total", "Requests entering the service.").add(10);
        registry.gauge("fdbscan_inflight", "Requests running right now.").set(2);
        let latency = registry.histogram(
            "fdbscan_latency_seconds",
            "End-to-end latency.",
            MetricUnit::Seconds,
        );
        for ms in [1u64, 2, 5, 40, 900] {
            latency.observe_duration(Duration::from_millis(ms));
        }
        registry
            .labeled_counter("fdbscan_shed_total", "Shed requests.", "cause", "queue_full")
            .inc();
        registry
            .labeled_counter("fdbscan_shed_total", "Shed requests.", "cause", "memory_pressure")
            .add(2);
        let text = registry.render_prometheus();
        let stats = validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(stats.families, 4);
        assert!(text.contains("# TYPE fdbscan_latency_seconds histogram"));
        assert!(text.contains("fdbscan_shed_total{cause=\"queue_full\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("fdbscan_latency_seconds_count 5"));
        // Exactly one TYPE line for the labeled family.
        assert_eq!(text.matches("# TYPE fdbscan_shed_total").count(), 1);
    }

    #[test]
    fn seconds_histograms_render_in_seconds() {
        let registry = MetricsRegistry::new(true);
        let h = registry.histogram("fdbscan_wait_seconds", "x", MetricUnit::Seconds);
        h.observe_duration(Duration::from_secs(1)); // 1e9 ns
        let text = registry.render_prometheus();
        // The 1e9 ns observation lands in bucket [2^29, 2^30-1]... no:
        // bucket of 1e9 is 29 (2^29 ≈ 5.4e8 .. 2^30-1 ≈ 1.07e9); its
        // upper bound in seconds is ≈ 1.07, and the sum is exactly 1.
        assert!(text.contains("fdbscan_wait_seconds_sum 1\n"), "{text}");
        assert!(validate_exposition(&text).is_ok());
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new(true);
        registry.labeled_counter("fdbscan_t_total", "x", "tenant", "a\"b\\c\nd").inc();
        let text = registry.render_prometheus();
        assert!(text.contains(r#"tenant="a\"b\\c\nd""#), "{text}");
        validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }

    #[test]
    fn json_snapshot_carries_quantiles() {
        let registry = MetricsRegistry::new(true);
        let h = registry.histogram("fdbscan_x_seconds", "x", MetricUnit::Seconds);
        for ns in 1..=1000u64 {
            h.observe(ns);
        }
        registry.counter("fdbscan_n_total", "n").add(9);
        let json = registry.to_json();
        let hist = json.get("histograms").unwrap().get("fdbscan_x_seconds").unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(1000.0));
        let p95 = hist.get("p95").unwrap().as_f64().unwrap();
        assert!((p95 - 950.0).abs() / 950.0 < 0.2, "p95 {p95}");
        assert_eq!(
            json.get("counters").unwrap().get("fdbscan_n_total").unwrap().as_f64(),
            Some(9.0)
        );
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        let cases: &[(&str, &str)] = &[
            ("x_total 1\n", "no TYPE line"),
            ("# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n", "duplicate TYPE"),
            ("# TYPE x_total counter\nx_total -1\n", "value -1"),
            ("# TYPE x_total counter\nx_total 1\nx_total 2\n", "duplicate sample"),
            ("# TYPE x_total counter\nx_total nope\n", "unparseable value"),
            ("# TYPE x_total counter\n", "never sampled"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                 h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
                "counts decreased",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
                "missing terminal +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
                "_count 4 != +Inf bucket 5",
            ),
        ];
        for (text, expected) in cases {
            let err = validate_exposition(text).expect_err(text);
            assert!(err.contains(expected), "for {text:?}: got {err:?}, wanted {expected:?}");
        }
    }

    #[test]
    fn checker_accepts_labeled_histograms() {
        let text = "# TYPE h histogram\n\
                    h_bucket{tenant=\"a\",le=\"0.5\"} 1\n\
                    h_bucket{tenant=\"a\",le=\"+Inf\"} 2\n\
                    h_sum{tenant=\"a\"} 0.7\n\
                    h_count{tenant=\"a\"} 2\n";
        let stats = validate_exposition(text).unwrap();
        assert_eq!(stats, ExpositionStats { families: 1, samples: 4 });
    }
}
