//! Tracing and profiling: phase spans, named kernel spans, occupancy.
//!
//! The paper's evaluation rests on *where time goes* ("most of the time
//! in FDBSCAN is spent in the tree search, while in FDBSCAN-DenseBox it
//! is in the dense cells processing"), so the device records a timeline
//! of every named kernel launch nested inside algorithm phase spans:
//!
//! * **Phase spans** — RAII guards opened by algorithm code
//!   ([`Tracer::phase`]); they nest (`fdbscan` ▸ `main` ▸ …) and the
//!   nesting path is attached to every event recorded inside them.
//! * **Kernel spans** — recorded by `Device` for each launch, carrying
//!   the index-space size, block size/count, grid-stride passes, and a
//!   load-imbalance metric (max-participant-busy ÷ mean-participant-busy,
//!   ≥ 1.0; 1.0 = perfectly balanced) measured by the worker pool.
//! * **Instant events** — point-in-time markers (e.g. the resilience
//!   ladder's degradation decisions).
//! * **Histograms** — per-label duration histograms with log2 buckets;
//!   recording is a handful of relaxed atomic ops, no allocation.
//!
//! # Cost when disabled
//!
//! A disabled tracer is a no-op sink: the hot path (one check per kernel
//! *launch*, not per index) is a single relaxed atomic load, the pool
//! skips all per-block clock reads, and nothing is recorded. Timestamps
//! are offsets from the tracer's construction epoch, so traces from one
//! process line up on one timeline.
//!
//! # Export
//!
//! [`Tracer::export_chrome`] emits Chrome `trace_event` JSON loadable in
//! Perfetto / `chrome://tracing`; [`Tracer::export_text`] a compact
//! indented timeline. Setting `FDBSCAN_TRACE=<path>` when constructing a
//! [`crate::Device`] enables tracing and writes the trace to `<path>`
//! when the last clone of the device is dropped; `FDBSCAN_TRACE_FORMAT`
//! selects `chrome` (default) or `text`.
//!
//! Phase guards are meant for the single control thread that drives the
//! algorithm (kernel launches block the caller, so algorithm control flow
//! is sequential); events may be recorded from any thread.

use std::borrow::Cow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::Json;

/// Environment variable naming the trace output file (enables tracing).
pub const TRACE_ENV: &str = "FDBSCAN_TRACE";

thread_local! {
    /// The request id events recorded on this thread are attributed to.
    /// Threaded through a thread-local (not the `Tracer`) because the
    /// tracer is shared by every concurrent request on the device, while
    /// a request's control flow — kernel launches block the caller — is
    /// confined to the thread driving it.
    static CURRENT_REQUEST: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Tags every span/instant recorded on the current thread with
/// `request_id` until the returned guard drops (scopes nest; the guard
/// restores the previous id). A service front-end opens one scope per
/// request so a Chrome trace of a concurrent run can be filtered per
/// request.
pub fn request_scope(request_id: u64) -> RequestScope {
    let previous = CURRENT_REQUEST.with(|cell| cell.replace(Some(request_id)));
    RequestScope { previous }
}

/// The request id spans recorded on this thread are tagged with, if a
/// [`request_scope`] is open.
pub fn current_request_id() -> Option<u64> {
    CURRENT_REQUEST.with(std::cell::Cell::get)
}

/// RAII guard of a [`request_scope`]; restores the previous (usually
/// absent) request id on drop.
#[must_use = "the request scope ends when this guard is dropped"]
#[derive(Debug)]
pub struct RequestScope {
    previous: Option<u64>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|cell| cell.set(self.previous));
    }
}
/// Environment variable selecting the trace format (`chrome` | `text`).
pub const TRACE_FORMAT_ENV: &str = "FDBSCAN_TRACE_FORMAT";

/// Trace export format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome `trace_event` JSON (Perfetto / `chrome://tracing`).
    Chrome,
    /// Compact indented text timeline.
    Text,
}

/// What a [`SpanRecord`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// An algorithm phase opened via [`Tracer::phase`].
    Phase,
    /// One kernel launch (including reductions).
    Kernel,
    /// A point-in-time marker (zero duration).
    Instant,
}

/// Per-launch execution metadata attached to kernel spans.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelMeta {
    /// Index-space size (`n` of the launch).
    pub index_space: usize,
    /// Indices per block.
    pub block_size: usize,
    /// Blocks executed (`ceil(n / block_size)`).
    pub blocks: u64,
    /// Grid-stride passes: the most blocks any one participant pulled.
    pub passes: u64,
    /// Pool participants (workers + the launching thread).
    pub participants: usize,
    /// Load imbalance: max participant busy time ÷ mean participant busy
    /// time, over all participants (idle ones included). 1.0 = perfectly
    /// balanced; `participants as f64` = one participant did everything.
    pub imbalance: f64,
}

impl KernelMeta {
    /// Occupancy: mean ÷ max busy time, in (0, 1]; the reciprocal of
    /// [`KernelMeta::imbalance`]. 1.0 = every participant equally busy.
    pub fn occupancy(&self) -> f64 {
        if self.imbalance > 0.0 {
            1.0 / self.imbalance
        } else {
            1.0
        }
    }
}

/// One recorded event: a phase span, kernel span, or instant marker.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Event label (kernel or phase name).
    pub label: Cow<'static, str>,
    /// Slash-joined path of enclosing phases at record time (for a phase
    /// span: the path *excluding* the span itself). Empty at top level.
    pub path: String,
    /// Event kind.
    pub kind: SpanKind,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the tracer epoch, nanoseconds (== `start_ns` for
    /// instants).
    pub end_ns: u64,
    /// Launch metadata (kernel spans only).
    pub kernel: Option<KernelMeta>,
    /// The service request this event belongs to, when the recording
    /// thread was inside a [`request_scope`].
    pub request_id: Option<u64>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Full path including the span's own label.
    pub fn full_path(&self) -> String {
        if self.path.is_empty() {
            self.label.to_string()
        } else {
            format!("{}/{}", self.path, self.label)
        }
    }
}

const BUCKETS: usize = 64;

/// A duration histogram with log2 (power-of-two) buckets.
///
/// Bucket `b` counts durations `d` (ns) with `floor(log2(max(d, 1))) == b`,
/// i.e. bucket 0 holds `0..=1`, bucket `b > 0` holds `2^b ..= 2^(b+1)-1`.
/// Recording is 4 relaxed atomic RMWs — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a duration of `ns` nanoseconds falls into.
    pub fn bucket_index(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros()) as usize
    }

    /// Inclusive `(lower, upper)` value bounds of bucket `index`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS);
        let lower = if index == 0 { 0 } else { 1u64 << index };
        let upper = if index >= 63 { u64::MAX } else { (1u64 << (index + 1)) - 1 };
        (lower, upper)
    }

    /// Records one duration (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain-value copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`) of recorded values — a conservative percentile
    /// estimate with log2 resolution. Returns 0 if nothing was recorded.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_range(index).1.min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Plain-value copy of the whole histogram, suitable for windowed
    /// quantile math ([`HistogramSnapshot::since`]) without resetting
    /// the live atomics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.bucket_counts(),
            count: self.count(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Interpolated `q`-quantile estimate (see
    /// [`HistogramSnapshot::quantile`]) over everything recorded so far.
    pub fn quantile_estimate(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Summarizes the histogram under the given label.
    pub fn summarize(&self, label: &str) -> HistogramSummary {
        HistogramSummary {
            label: label.to_string(),
            count: self.count(),
            p50_ns: self.quantile_upper_bound(0.50),
            p95_ns: self.quantile_upper_bound(0.95),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            total_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a [`Histogram`] at one point in time.
///
/// Two snapshots of the same histogram delta with
/// [`HistogramSnapshot::since`], giving windowed (e.g. rolling-p95)
/// quantiles without ever clearing the live atomics. Quantiles are
/// estimated by **log-linear interpolation**: a rank that lands a
/// fraction `f` of the way through bucket `b` maps to `2^(b + f)` —
/// linear interpolation in log2 space, matching the buckets' geometry —
/// clamped to the observed maximum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded duration, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Per-bucket counts (see [`Histogram::bucket_range`]).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Saturating per-bucket delta against an `earlier` snapshot of the
    /// same histogram — the recordings that happened *between* the two
    /// snapshots. `max_ns` carries over from `self`: the true window
    /// maximum is unrecoverable from bucket deltas, so the reported max
    /// is an upper bound for the window (exact when the all-time max
    /// fell inside it).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, by
    /// log-linear interpolation within the containing log2 bucket,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            seen += bucket;
            if seen >= rank {
                // Fraction of the way through this bucket, in (0, 1].
                let into = (rank - (seen - bucket)) as f64 / bucket as f64;
                let estimate = if index == 0 {
                    // Bucket 0 spans [0, 1]: interpolate linearly.
                    into
                } else {
                    // Log-linear: lower bound 2^index, upper 2^(index+1).
                    (index as f64 + into).exp2()
                };
                return (estimate.round() as u64).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Plain-value summary of one label's duration histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Kernel or phase label.
    pub label: String,
    /// Number of recorded spans.
    pub count: u64,
    /// p50 duration (log2-bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// p95 duration (log2-bucket upper bound), nanoseconds.
    pub p95_ns: u64,
    /// Exact maximum duration, nanoseconds.
    pub max_ns: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub total_ns: u64,
}

impl HistogramSummary {
    /// Serializes the summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("count", Json::U64(self.count)),
            ("p50_ns", Json::U64(self.p50_ns)),
            ("p95_ns", Json::U64(self.p95_ns)),
            ("max_ns", Json::U64(self.max_ns)),
            ("total_ns", Json::U64(self.total_ns)),
        ])
    }
}

/// Where an enabled tracer writes its trace when dropped.
#[derive(Clone, Debug)]
struct AutoExport {
    path: PathBuf,
    format: TraceFormat,
}

/// The trace sink: collects spans, instants, and histograms.
///
/// Cheap to share (`Device` holds it in an `Arc`). Disabled tracers
/// reject every record after a single relaxed atomic load.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<SpanRecord>>,
    /// Stack of open phase labels on the control thread.
    phase_stack: Mutex<Vec<&'static str>>,
    /// Per-label duration histograms. The map lock is taken once per
    /// *launch/phase end* (cold relative to kernel bodies); recording into
    /// an individual histogram is lock-free.
    histograms: Mutex<Vec<(Cow<'static, str>, Arc<Histogram>)>>,
    auto_export: Mutex<Option<AutoExport>>,
}

impl Tracer {
    /// Creates a tracer; `enabled = false` makes every record a no-op.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            phase_stack: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            auto_export: Mutex::new(None),
        }
    }

    /// Creates a tracer configured from the environment: enabled iff
    /// `FDBSCAN_TRACE` is set, auto-exporting to that path on drop in
    /// the `FDBSCAN_TRACE_FORMAT` format (`chrome` unless `text`).
    pub fn from_env() -> Self {
        match std::env::var_os(TRACE_ENV) {
            Some(path) if !path.is_empty() => {
                let format = match std::env::var(TRACE_FORMAT_ENV).as_deref() {
                    Ok("text") => TraceFormat::Text,
                    _ => TraceFormat::Chrome,
                };
                let tracer = Self::new(true);
                *tracer.auto_export.lock() = Some(AutoExport { path: PathBuf::from(path), format });
                tracer
            }
            _ => Self::new(false),
        }
    }

    /// Whether the tracer records anything. This is the hot-path check:
    /// one relaxed atomic load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer epoch.
    fn since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Current slash-joined phase path (empty outside any phase).
    pub fn current_path(&self) -> String {
        self.phase_stack.lock().join("/")
    }

    /// Opens a phase span; the returned guard records the span (and its
    /// duration histogram) when dropped. No-op when disabled.
    pub fn phase<'t>(&'t self, label: &'static str) -> PhaseSpan<'t> {
        if !self.enabled() {
            return PhaseSpan { tracer: None, label, start: None };
        }
        self.phase_stack.lock().push(label);
        PhaseSpan { tracer: Some(self), label, start: Some(Instant::now()) }
    }

    fn end_phase(&self, label: &'static str, start: Instant) {
        let end = Instant::now();
        let path = {
            let mut stack = self.phase_stack.lock();
            // Pop up to and including this label (defensive against a
            // guard outliving an inner guard that leaked).
            while let Some(top) = stack.pop() {
                if top == label {
                    break;
                }
            }
            stack.join("/")
        };
        let record = SpanRecord {
            label: Cow::Borrowed(label),
            path,
            kind: SpanKind::Phase,
            start_ns: self.since_epoch(start),
            end_ns: self.since_epoch(end),
            kernel: None,
            request_id: current_request_id(),
        };
        self.histogram(Cow::Borrowed(label)).record(record.duration_ns());
        self.events.lock().push(record);
    }

    /// Records one kernel launch span. No-op when disabled.
    pub fn record_kernel(
        &self,
        label: &'static str,
        start: Instant,
        end: Instant,
        meta: KernelMeta,
    ) {
        if !self.enabled() {
            return;
        }
        let record = SpanRecord {
            label: Cow::Borrowed(label),
            path: self.current_path(),
            kind: SpanKind::Kernel,
            start_ns: self.since_epoch(start),
            end_ns: self.since_epoch(end),
            kernel: Some(meta),
            request_id: current_request_id(),
        };
        self.histogram(Cow::Borrowed(label)).record(record.duration_ns());
        self.events.lock().push(record);
    }

    /// Records a point-in-time marker (e.g. a resilience-ladder
    /// decision). No-op when disabled.
    pub fn instant(&self, label: impl Into<Cow<'static, str>>) {
        if !self.enabled() {
            return;
        }
        let now = self.since_epoch(Instant::now());
        let record = SpanRecord {
            label: label.into(),
            path: self.current_path(),
            kind: SpanKind::Instant,
            start_ns: now,
            end_ns: now,
            kernel: None,
            request_id: current_request_id(),
        };
        self.events.lock().push(record);
    }

    /// The histogram registered under `label` (created on first use).
    pub fn histogram(&self, label: Cow<'static, str>) -> Arc<Histogram> {
        let mut registry = self.histograms.lock();
        if let Some((_, histogram)) = registry.iter().find(|(l, _)| *l == label) {
            return Arc::clone(histogram);
        }
        let histogram = Arc::new(Histogram::default());
        registry.push((label, Arc::clone(&histogram)));
        histogram
    }

    /// Copies out all recorded events, in recording order.
    pub fn events(&self) -> Vec<SpanRecord> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Summaries of every per-label histogram, in registration order.
    pub fn histogram_summaries(&self) -> Vec<HistogramSummary> {
        self.histograms.lock().iter().map(|(label, h)| h.summarize(label)).collect()
    }

    /// Discards all recorded events and histograms (the epoch and the
    /// enabled flag are kept).
    pub fn clear(&self) {
        self.events.lock().clear();
        self.histograms.lock().clear();
    }

    /// Exports the trace as a Chrome `trace_event` JSON document
    /// (Perfetto / `chrome://tracing` loadable).
    pub fn export_chrome(&self) -> String {
        let events = self.events.lock();
        let mut trace_events = Vec::with_capacity(events.len() + 1);
        trace_events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(1)),
            ("args", Json::obj([("name", Json::str("fdbscan simulated device"))])),
        ]));
        // One named virtual thread row per request id, so Perfetto lays
        // concurrent requests out side by side (tid 1 = untagged events).
        let mut request_ids: Vec<u64> = events.iter().filter_map(|e| e.request_id).collect();
        request_ids.sort_unstable();
        request_ids.dedup();
        for &id in &request_ids {
            trace_events.push(Json::obj([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(id + 2)),
                ("args", Json::obj([("name", Json::str(format!("request {id}")))])),
            ]));
        }
        for event in events.iter() {
            let mut args = vec![("path", Json::str(event.path.clone()))];
            if let Some(id) = event.request_id {
                args.push(("request_id", Json::U64(id)));
            }
            if let Some(meta) = &event.kernel {
                args.extend([
                    ("index_space", Json::U64(meta.index_space as u64)),
                    ("block_size", Json::U64(meta.block_size as u64)),
                    ("blocks", Json::U64(meta.blocks)),
                    ("passes", Json::U64(meta.passes)),
                    ("participants", Json::U64(meta.participants as u64)),
                    ("imbalance", Json::F64(meta.imbalance)),
                    ("occupancy", Json::F64(meta.occupancy())),
                ]);
            }
            let ts = event.start_ns as f64 / 1e3; // trace_event uses µs
            let common = [
                ("name", Json::str(event.label.to_string())),
                ("ts", Json::F64(ts)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(event.request_id.map_or(1, |id| id + 2))),
                ("args", Json::obj(args)),
            ];
            let specific = match event.kind {
                SpanKind::Instant => {
                    vec![("ph", Json::str("i")), ("s", Json::str("t"))]
                }
                kind => vec![
                    ("ph", Json::str("X")),
                    ("dur", Json::F64(event.duration_ns() as f64 / 1e3)),
                    ("cat", Json::str(if kind == SpanKind::Phase { "phase" } else { "kernel" })),
                ],
            };
            trace_events.push(Json::obj(common.into_iter().chain(specific)));
        }
        Json::obj([("traceEvents", Json::Arr(trace_events)), ("displayTimeUnit", Json::str("ms"))])
            .to_compact()
    }

    /// Exports the trace as a compact indented text timeline, ordered by
    /// start time, indented by phase depth.
    pub fn export_text(&self) -> String {
        let mut events = self.events();
        events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.end_ns)));
        let mut out = String::new();
        for event in &events {
            let depth = if event.path.is_empty() { 0 } else { event.path.split('/').count() };
            let indent = "  ".repeat(depth);
            let start_ms = event.start_ns as f64 / 1e6;
            let dur_ms = event.duration_ns() as f64 / 1e6;
            match event.kind {
                SpanKind::Instant => {
                    out.push_str(&format!("{indent}@{start_ms:9.3} ms  ! {}\n", event.label));
                }
                SpanKind::Phase => {
                    out.push_str(&format!(
                        "{indent}@{start_ms:9.3} ms  {:<28} {dur_ms:9.3} ms\n",
                        event.label
                    ));
                }
                SpanKind::Kernel => {
                    let meta = event.kernel.as_ref().expect("kernel span has meta");
                    out.push_str(&format!(
                        "{indent}@{start_ms:9.3} ms  {:<28} {dur_ms:9.3} ms  n={} blocks={} \
                         passes={} occ={:.2}\n",
                        event.label,
                        meta.index_space,
                        meta.blocks,
                        meta.passes,
                        meta.occupancy(),
                    ));
                }
            }
        }
        out
    }

    /// Renders the trace in the given format.
    pub fn export(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Chrome => self.export_chrome(),
            TraceFormat::Text => self.export_text(),
        }
    }

    /// Writes the trace to `path` in the given format.
    pub fn export_to_file(
        &self,
        path: &std::path::Path,
        format: TraceFormat,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.export(format))
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        let Some(auto) = self.auto_export.lock().take() else { return };
        if self.events.get_mut().is_empty() {
            return;
        }
        if let Err(error) = self.export_to_file(&auto.path, auto.format) {
            eprintln!("fdbscan: failed to write trace to {}: {error}", auto.path.display());
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("events", &self.events.lock().len())
            .finish()
    }
}

/// RAII guard for a phase span; records the span when dropped.
#[must_use = "the phase span ends when this guard is dropped"]
pub struct PhaseSpan<'t> {
    /// `None` when the tracer was disabled at open time.
    tracer: Option<&'t Tracer>,
    label: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if let (Some(tracer), Some(start)) = (self.tracer, self.start) {
            tracer.end_phase(self.label, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn meta(n: usize) -> KernelMeta {
        KernelMeta {
            index_space: n,
            block_size: 256,
            blocks: n.div_ceil(256) as u64,
            passes: 2,
            participants: 4,
            imbalance: 1.25,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(false);
        {
            let _phase = tracer.phase("index");
            tracer.record_kernel("k", Instant::now(), Instant::now(), meta(100));
            tracer.instant("marker");
        }
        assert_eq!(tracer.event_count(), 0);
        assert!(tracer.histogram_summaries().is_empty());
    }

    #[test]
    fn phase_spans_nest_and_balance() {
        let tracer = Tracer::new(true);
        {
            let _outer = tracer.phase("fdbscan");
            {
                let _inner = tracer.phase("main");
                tracer.record_kernel("traverse", Instant::now(), Instant::now(), meta(64));
            }
        }
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        // Recording order: innermost closes first.
        assert_eq!(events[0].label, "traverse");
        assert_eq!(events[0].path, "fdbscan/main");
        assert_eq!(events[1].label, "main");
        assert_eq!(events[1].path, "fdbscan");
        assert_eq!(events[2].label, "fdbscan");
        assert_eq!(events[2].path, "");
        // Inner spans lie within the outer span.
        assert!(events[1].start_ns >= events[2].start_ns);
        assert!(events[1].end_ns <= events[2].end_ns);
        assert!(tracer.current_path().is_empty(), "stack must balance");
    }

    #[test]
    fn kernel_meta_survives_export() {
        let tracer = Tracer::new(true);
        let start = Instant::now();
        tracer.record_kernel("bvh.build", start, start + Duration::from_micros(10), meta(1000));
        let chrome = tracer.export_chrome();
        let parsed = crate::json::parse(&chrome).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let kernel = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("bvh.build"))
            .expect("kernel event present");
        assert_eq!(kernel.get("ph").unwrap().as_str(), Some("X"));
        let args = kernel.get("args").unwrap();
        assert_eq!(args.get("index_space").unwrap().as_f64(), Some(1000.0));
        assert_eq!(args.get("imbalance").unwrap().as_f64(), Some(1.25));
        assert_eq!(args.get("occupancy").unwrap().as_f64(), Some(0.8));
    }

    #[test]
    fn instant_events_have_zero_duration() {
        let tracer = Tracer::new(true);
        tracer.instant("fallback: g-dbscan -> densebox");
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::Instant);
        assert_eq!(events[0].duration_ns(), 0);
    }

    #[test]
    fn histogram_buckets_cover_value() {
        let histogram = Histogram::default();
        for ns in [0u64, 1, 2, 3, 255, 256, 1023, 1 << 40, u64::MAX] {
            let index = Histogram::bucket_index(ns);
            let (lower, upper) = Histogram::bucket_range(index);
            assert!((lower..=upper).contains(&ns), "ns={ns} index={index} range=({lower},{upper})");
            histogram.record(ns);
        }
        assert_eq!(histogram.count(), 9);
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let histogram = Histogram::default();
        for ns in 1..=100u64 {
            histogram.record(ns * 10);
        }
        let p50 = histogram.quantile_upper_bound(0.50);
        let p95 = histogram.quantile_upper_bound(0.95);
        // Values run 10..=1000; p50 true value 500 → bucket [512,1023]
        // upper bound clamped to observed max.
        assert!(p50 >= 500, "p50 {p50}");
        assert!(p95 >= 950, "p95 {p95}");
        assert!(p95 <= 1000, "p95 {p95} clamped to max");
        assert_eq!(histogram.summarize("x").max_ns, 1000);
    }

    #[test]
    fn interpolated_quantiles_track_a_uniform_distribution() {
        // 1000 evenly spaced values 1..=1000: true p50 = 500, p95 = 950,
        // p99 = 990. Log-linear interpolation must land within the
        // containing log2 bucket *and* within 20% of the true value —
        // far tighter than the factor-2 bucket-upper-bound estimate.
        let histogram = Histogram::default();
        for ns in 1..=1000u64 {
            histogram.record(ns);
        }
        for (q, truth) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let estimate = histogram.quantile_estimate(q) as f64;
            let error = (estimate - truth).abs() / truth;
            assert!(error < 0.20, "q={q}: estimate {estimate} vs true {truth} (err {error:.3})");
        }
    }

    #[test]
    fn interpolated_quantiles_respect_a_point_mass() {
        // Every observation identical: all quantiles clamp to the
        // (exact) max, and stay within the value's own bucket.
        let histogram = Histogram::default();
        for _ in 0..100 {
            histogram.record(777);
        }
        let (lower, _) = Histogram::bucket_range(Histogram::bucket_index(777));
        for q in [0.01, 0.50, 0.95, 0.99, 1.0] {
            let estimate = histogram.quantile_estimate(q);
            assert!(estimate >= lower && estimate <= 777, "q={q}: estimate {estimate}");
        }
        assert_eq!(histogram.quantile_estimate(1.0), 777);
    }

    #[test]
    fn interpolated_quantiles_split_a_bimodal_distribution() {
        // 90 fast (≈100 ns) + 10 slow (≈1_000_000 ns): p50 must sit in
        // the fast mode, p95 and p99 in the slow one, and the ordering
        // p50 <= p95 <= p99 must hold.
        let snapshot = {
            let histogram = Histogram::default();
            for _ in 0..90 {
                histogram.record(100);
            }
            for _ in 0..10 {
                histogram.record(1_000_000);
            }
            histogram.snapshot()
        };
        let (p50, p95, p99) =
            (snapshot.quantile(0.50), snapshot.quantile(0.95), snapshot.quantile(0.99));
        assert!(p50 <= 128, "p50 {p50} escaped the fast mode");
        assert!(p95 >= 524_288, "p95 {p95} missed the slow mode");
        assert!(p50 <= p95 && p95 <= p99, "quantiles out of order: {p50} {p95} {p99}");
        assert_eq!(snapshot.quantile(0.0), snapshot.quantile(1e-9));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snapshot = Histogram::default().snapshot();
        assert_eq!(snapshot.quantile(0.5), 0);
        assert_eq!(snapshot.count(), 0);
        assert_eq!(snapshot.since(&HistogramSnapshot::default()), snapshot);
    }

    #[test]
    fn snapshot_delta_windows_the_quantiles() {
        // Window 1 records slow values, window 2 fast ones; the delta
        // quantile must reflect only window 2.
        let histogram = Histogram::default();
        for _ in 0..50 {
            histogram.record(1 << 20);
        }
        let mark = histogram.snapshot();
        for _ in 0..50 {
            histogram.record(64);
        }
        let window = histogram.snapshot().since(&mark);
        assert_eq!(window.count(), 50);
        assert!(window.quantile(0.95) <= 128, "delta window leaked earlier recordings");
        // The all-time view still sees both modes.
        assert!(histogram.quantile_estimate(0.95) >= 1 << 19);
    }

    #[test]
    fn request_scope_tags_spans_and_restores_on_drop() {
        let tracer = Tracer::new(true);
        tracer.instant("before");
        {
            let _scope = request_scope(41);
            {
                let _inner = request_scope(42); // scopes nest
                let _phase = tracer.phase("work");
                tracer.record_kernel("k", Instant::now(), Instant::now(), meta(10));
            }
            tracer.instant("outer-again");
        }
        tracer.instant("after");
        let events = tracer.events();
        let by_label = |label: &str| {
            events.iter().find(|e| e.label == label).unwrap_or_else(|| panic!("{label} missing"))
        };
        assert_eq!(by_label("before").request_id, None);
        assert_eq!(by_label("k").request_id, Some(42));
        assert_eq!(by_label("work").request_id, Some(42));
        assert_eq!(by_label("outer-again").request_id, Some(41));
        assert_eq!(by_label("after").request_id, None);
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn chrome_export_carries_request_ids() {
        let tracer = Tracer::new(true);
        {
            let _scope = request_scope(7);
            let start = Instant::now();
            tracer.record_kernel("scan", start, start + Duration::from_micros(3), meta(64));
        }
        let parsed = crate::json::parse(&tracer.export_chrome()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let kernel = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("scan"))
            .expect("kernel event present");
        assert_eq!(kernel.get("args").unwrap().get("request_id").unwrap().as_f64(), Some(7.0));
        assert_eq!(kernel.get("tid").unwrap().as_f64(), Some(9.0), "tid = request_id + 2");
        let row = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .expect("request thread row named");
        assert_eq!(row.get("args").unwrap().get("name").unwrap().as_str(), Some("request 7"));
    }

    #[test]
    fn export_text_mentions_spans() {
        let tracer = Tracer::new(true);
        {
            let _phase = tracer.phase("index");
            let start = Instant::now();
            tracer.record_kernel("grid.build", start, start + Duration::from_micros(5), meta(10));
        }
        let text = tracer.export_text();
        assert!(text.contains("index"));
        assert!(text.contains("grid.build"));
        assert!(text.contains("occ="));
    }

    #[test]
    fn clear_discards_events() {
        let tracer = Tracer::new(true);
        tracer.instant("x");
        tracer.clear();
        assert_eq!(tracer.event_count(), 0);
    }
}
