//! Tracing and profiling: phase spans, named kernel spans, occupancy.
//!
//! The paper's evaluation rests on *where time goes* ("most of the time
//! in FDBSCAN is spent in the tree search, while in FDBSCAN-DenseBox it
//! is in the dense cells processing"), so the device records a timeline
//! of every named kernel launch nested inside algorithm phase spans:
//!
//! * **Phase spans** — RAII guards opened by algorithm code
//!   ([`Tracer::phase`]); they nest (`fdbscan` ▸ `main` ▸ …) and the
//!   nesting path is attached to every event recorded inside them.
//! * **Kernel spans** — recorded by `Device` for each launch, carrying
//!   the index-space size, block size/count, grid-stride passes, and a
//!   load-imbalance metric (max-participant-busy ÷ mean-participant-busy,
//!   ≥ 1.0; 1.0 = perfectly balanced) measured by the worker pool.
//! * **Instant events** — point-in-time markers (e.g. the resilience
//!   ladder's degradation decisions).
//! * **Histograms** — per-label duration histograms with log2 buckets;
//!   recording is a handful of relaxed atomic ops, no allocation.
//!
//! # Cost when disabled
//!
//! A disabled tracer is a no-op sink: the hot path (one check per kernel
//! *launch*, not per index) is a single relaxed atomic load, the pool
//! skips all per-block clock reads, and nothing is recorded. Timestamps
//! are offsets from the tracer's construction epoch, so traces from one
//! process line up on one timeline.
//!
//! # Export
//!
//! [`Tracer::export_chrome`] emits Chrome `trace_event` JSON loadable in
//! Perfetto / `chrome://tracing`; [`Tracer::export_text`] a compact
//! indented timeline. Setting `FDBSCAN_TRACE=<path>` when constructing a
//! [`crate::Device`] enables tracing and writes the trace to `<path>`
//! when the last clone of the device is dropped; `FDBSCAN_TRACE_FORMAT`
//! selects `chrome` (default) or `text`.
//!
//! Phase guards are meant for the single control thread that drives the
//! algorithm (kernel launches block the caller, so algorithm control flow
//! is sequential); events may be recorded from any thread.

use std::borrow::Cow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::Json;

/// Environment variable naming the trace output file (enables tracing).
pub const TRACE_ENV: &str = "FDBSCAN_TRACE";
/// Environment variable selecting the trace format (`chrome` | `text`).
pub const TRACE_FORMAT_ENV: &str = "FDBSCAN_TRACE_FORMAT";

/// Trace export format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome `trace_event` JSON (Perfetto / `chrome://tracing`).
    Chrome,
    /// Compact indented text timeline.
    Text,
}

/// What a [`SpanRecord`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// An algorithm phase opened via [`Tracer::phase`].
    Phase,
    /// One kernel launch (including reductions).
    Kernel,
    /// A point-in-time marker (zero duration).
    Instant,
}

/// Per-launch execution metadata attached to kernel spans.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelMeta {
    /// Index-space size (`n` of the launch).
    pub index_space: usize,
    /// Indices per block.
    pub block_size: usize,
    /// Blocks executed (`ceil(n / block_size)`).
    pub blocks: u64,
    /// Grid-stride passes: the most blocks any one participant pulled.
    pub passes: u64,
    /// Pool participants (workers + the launching thread).
    pub participants: usize,
    /// Load imbalance: max participant busy time ÷ mean participant busy
    /// time, over all participants (idle ones included). 1.0 = perfectly
    /// balanced; `participants as f64` = one participant did everything.
    pub imbalance: f64,
}

impl KernelMeta {
    /// Occupancy: mean ÷ max busy time, in (0, 1]; the reciprocal of
    /// [`KernelMeta::imbalance`]. 1.0 = every participant equally busy.
    pub fn occupancy(&self) -> f64 {
        if self.imbalance > 0.0 {
            1.0 / self.imbalance
        } else {
            1.0
        }
    }
}

/// One recorded event: a phase span, kernel span, or instant marker.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Event label (kernel or phase name).
    pub label: Cow<'static, str>,
    /// Slash-joined path of enclosing phases at record time (for a phase
    /// span: the path *excluding* the span itself). Empty at top level.
    pub path: String,
    /// Event kind.
    pub kind: SpanKind,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the tracer epoch, nanoseconds (== `start_ns` for
    /// instants).
    pub end_ns: u64,
    /// Launch metadata (kernel spans only).
    pub kernel: Option<KernelMeta>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Full path including the span's own label.
    pub fn full_path(&self) -> String {
        if self.path.is_empty() {
            self.label.to_string()
        } else {
            format!("{}/{}", self.path, self.label)
        }
    }
}

const BUCKETS: usize = 64;

/// A duration histogram with log2 (power-of-two) buckets.
///
/// Bucket `b` counts durations `d` (ns) with `floor(log2(max(d, 1))) == b`,
/// i.e. bucket 0 holds `0..=1`, bucket `b > 0` holds `2^b ..= 2^(b+1)-1`.
/// Recording is 4 relaxed atomic RMWs — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a duration of `ns` nanoseconds falls into.
    pub fn bucket_index(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros()) as usize
    }

    /// Inclusive `(lower, upper)` value bounds of bucket `index`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS);
        let lower = if index == 0 { 0 } else { 1u64 << index };
        let upper = if index >= 63 { u64::MAX } else { (1u64 << (index + 1)) - 1 };
        (lower, upper)
    }

    /// Records one duration (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain-value copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`) of recorded values — a conservative percentile
    /// estimate with log2 resolution. Returns 0 if nothing was recorded.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_range(index).1.min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Summarizes the histogram under the given label.
    pub fn summarize(&self, label: &str) -> HistogramSummary {
        HistogramSummary {
            label: label.to_string(),
            count: self.count(),
            p50_ns: self.quantile_upper_bound(0.50),
            p95_ns: self.quantile_upper_bound(0.95),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            total_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value summary of one label's duration histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Kernel or phase label.
    pub label: String,
    /// Number of recorded spans.
    pub count: u64,
    /// p50 duration (log2-bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// p95 duration (log2-bucket upper bound), nanoseconds.
    pub p95_ns: u64,
    /// Exact maximum duration, nanoseconds.
    pub max_ns: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub total_ns: u64,
}

impl HistogramSummary {
    /// Serializes the summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("count", Json::U64(self.count)),
            ("p50_ns", Json::U64(self.p50_ns)),
            ("p95_ns", Json::U64(self.p95_ns)),
            ("max_ns", Json::U64(self.max_ns)),
            ("total_ns", Json::U64(self.total_ns)),
        ])
    }
}

/// Where an enabled tracer writes its trace when dropped.
#[derive(Clone, Debug)]
struct AutoExport {
    path: PathBuf,
    format: TraceFormat,
}

/// The trace sink: collects spans, instants, and histograms.
///
/// Cheap to share (`Device` holds it in an `Arc`). Disabled tracers
/// reject every record after a single relaxed atomic load.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<SpanRecord>>,
    /// Stack of open phase labels on the control thread.
    phase_stack: Mutex<Vec<&'static str>>,
    /// Per-label duration histograms. The map lock is taken once per
    /// *launch/phase end* (cold relative to kernel bodies); recording into
    /// an individual histogram is lock-free.
    histograms: Mutex<Vec<(Cow<'static, str>, Arc<Histogram>)>>,
    auto_export: Mutex<Option<AutoExport>>,
}

impl Tracer {
    /// Creates a tracer; `enabled = false` makes every record a no-op.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            phase_stack: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            auto_export: Mutex::new(None),
        }
    }

    /// Creates a tracer configured from the environment: enabled iff
    /// `FDBSCAN_TRACE` is set, auto-exporting to that path on drop in
    /// the `FDBSCAN_TRACE_FORMAT` format (`chrome` unless `text`).
    pub fn from_env() -> Self {
        match std::env::var_os(TRACE_ENV) {
            Some(path) if !path.is_empty() => {
                let format = match std::env::var(TRACE_FORMAT_ENV).as_deref() {
                    Ok("text") => TraceFormat::Text,
                    _ => TraceFormat::Chrome,
                };
                let tracer = Self::new(true);
                *tracer.auto_export.lock() = Some(AutoExport { path: PathBuf::from(path), format });
                tracer
            }
            _ => Self::new(false),
        }
    }

    /// Whether the tracer records anything. This is the hot-path check:
    /// one relaxed atomic load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Nanoseconds since the tracer epoch.
    fn since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Current slash-joined phase path (empty outside any phase).
    pub fn current_path(&self) -> String {
        self.phase_stack.lock().join("/")
    }

    /// Opens a phase span; the returned guard records the span (and its
    /// duration histogram) when dropped. No-op when disabled.
    pub fn phase<'t>(&'t self, label: &'static str) -> PhaseSpan<'t> {
        if !self.enabled() {
            return PhaseSpan { tracer: None, label, start: None };
        }
        self.phase_stack.lock().push(label);
        PhaseSpan { tracer: Some(self), label, start: Some(Instant::now()) }
    }

    fn end_phase(&self, label: &'static str, start: Instant) {
        let end = Instant::now();
        let path = {
            let mut stack = self.phase_stack.lock();
            // Pop up to and including this label (defensive against a
            // guard outliving an inner guard that leaked).
            while let Some(top) = stack.pop() {
                if top == label {
                    break;
                }
            }
            stack.join("/")
        };
        let record = SpanRecord {
            label: Cow::Borrowed(label),
            path,
            kind: SpanKind::Phase,
            start_ns: self.since_epoch(start),
            end_ns: self.since_epoch(end),
            kernel: None,
        };
        self.histogram(Cow::Borrowed(label)).record(record.duration_ns());
        self.events.lock().push(record);
    }

    /// Records one kernel launch span. No-op when disabled.
    pub fn record_kernel(
        &self,
        label: &'static str,
        start: Instant,
        end: Instant,
        meta: KernelMeta,
    ) {
        if !self.enabled() {
            return;
        }
        let record = SpanRecord {
            label: Cow::Borrowed(label),
            path: self.current_path(),
            kind: SpanKind::Kernel,
            start_ns: self.since_epoch(start),
            end_ns: self.since_epoch(end),
            kernel: Some(meta),
        };
        self.histogram(Cow::Borrowed(label)).record(record.duration_ns());
        self.events.lock().push(record);
    }

    /// Records a point-in-time marker (e.g. a resilience-ladder
    /// decision). No-op when disabled.
    pub fn instant(&self, label: impl Into<Cow<'static, str>>) {
        if !self.enabled() {
            return;
        }
        let now = self.since_epoch(Instant::now());
        let record = SpanRecord {
            label: label.into(),
            path: self.current_path(),
            kind: SpanKind::Instant,
            start_ns: now,
            end_ns: now,
            kernel: None,
        };
        self.events.lock().push(record);
    }

    /// The histogram registered under `label` (created on first use).
    pub fn histogram(&self, label: Cow<'static, str>) -> Arc<Histogram> {
        let mut registry = self.histograms.lock();
        if let Some((_, histogram)) = registry.iter().find(|(l, _)| *l == label) {
            return Arc::clone(histogram);
        }
        let histogram = Arc::new(Histogram::default());
        registry.push((label, Arc::clone(&histogram)));
        histogram
    }

    /// Copies out all recorded events, in recording order.
    pub fn events(&self) -> Vec<SpanRecord> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Summaries of every per-label histogram, in registration order.
    pub fn histogram_summaries(&self) -> Vec<HistogramSummary> {
        self.histograms.lock().iter().map(|(label, h)| h.summarize(label)).collect()
    }

    /// Discards all recorded events and histograms (the epoch and the
    /// enabled flag are kept).
    pub fn clear(&self) {
        self.events.lock().clear();
        self.histograms.lock().clear();
    }

    /// Exports the trace as a Chrome `trace_event` JSON document
    /// (Perfetto / `chrome://tracing` loadable).
    pub fn export_chrome(&self) -> String {
        let events = self.events.lock();
        let mut trace_events = Vec::with_capacity(events.len() + 1);
        trace_events.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(1)),
            ("args", Json::obj([("name", Json::str("fdbscan simulated device"))])),
        ]));
        for event in events.iter() {
            let mut args = vec![("path", Json::str(event.path.clone()))];
            if let Some(meta) = &event.kernel {
                args.extend([
                    ("index_space", Json::U64(meta.index_space as u64)),
                    ("block_size", Json::U64(meta.block_size as u64)),
                    ("blocks", Json::U64(meta.blocks)),
                    ("passes", Json::U64(meta.passes)),
                    ("participants", Json::U64(meta.participants as u64)),
                    ("imbalance", Json::F64(meta.imbalance)),
                    ("occupancy", Json::F64(meta.occupancy())),
                ]);
            }
            let ts = event.start_ns as f64 / 1e3; // trace_event uses µs
            let common = [
                ("name", Json::str(event.label.to_string())),
                ("ts", Json::F64(ts)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(1)),
                ("args", Json::obj(args)),
            ];
            let specific = match event.kind {
                SpanKind::Instant => {
                    vec![("ph", Json::str("i")), ("s", Json::str("t"))]
                }
                kind => vec![
                    ("ph", Json::str("X")),
                    ("dur", Json::F64(event.duration_ns() as f64 / 1e3)),
                    ("cat", Json::str(if kind == SpanKind::Phase { "phase" } else { "kernel" })),
                ],
            };
            trace_events.push(Json::obj(common.into_iter().chain(specific)));
        }
        Json::obj([("traceEvents", Json::Arr(trace_events)), ("displayTimeUnit", Json::str("ms"))])
            .to_compact()
    }

    /// Exports the trace as a compact indented text timeline, ordered by
    /// start time, indented by phase depth.
    pub fn export_text(&self) -> String {
        let mut events = self.events();
        events.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.end_ns)));
        let mut out = String::new();
        for event in &events {
            let depth = if event.path.is_empty() { 0 } else { event.path.split('/').count() };
            let indent = "  ".repeat(depth);
            let start_ms = event.start_ns as f64 / 1e6;
            let dur_ms = event.duration_ns() as f64 / 1e6;
            match event.kind {
                SpanKind::Instant => {
                    out.push_str(&format!("{indent}@{start_ms:9.3} ms  ! {}\n", event.label));
                }
                SpanKind::Phase => {
                    out.push_str(&format!(
                        "{indent}@{start_ms:9.3} ms  {:<28} {dur_ms:9.3} ms\n",
                        event.label
                    ));
                }
                SpanKind::Kernel => {
                    let meta = event.kernel.as_ref().expect("kernel span has meta");
                    out.push_str(&format!(
                        "{indent}@{start_ms:9.3} ms  {:<28} {dur_ms:9.3} ms  n={} blocks={} \
                         passes={} occ={:.2}\n",
                        event.label,
                        meta.index_space,
                        meta.blocks,
                        meta.passes,
                        meta.occupancy(),
                    ));
                }
            }
        }
        out
    }

    /// Renders the trace in the given format.
    pub fn export(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Chrome => self.export_chrome(),
            TraceFormat::Text => self.export_text(),
        }
    }

    /// Writes the trace to `path` in the given format.
    pub fn export_to_file(
        &self,
        path: &std::path::Path,
        format: TraceFormat,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.export(format))
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        let Some(auto) = self.auto_export.lock().take() else { return };
        if self.events.get_mut().is_empty() {
            return;
        }
        if let Err(error) = self.export_to_file(&auto.path, auto.format) {
            eprintln!("fdbscan: failed to write trace to {}: {error}", auto.path.display());
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("events", &self.events.lock().len())
            .finish()
    }
}

/// RAII guard for a phase span; records the span when dropped.
#[must_use = "the phase span ends when this guard is dropped"]
pub struct PhaseSpan<'t> {
    /// `None` when the tracer was disabled at open time.
    tracer: Option<&'t Tracer>,
    label: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if let (Some(tracer), Some(start)) = (self.tracer, self.start) {
            tracer.end_phase(self.label, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn meta(n: usize) -> KernelMeta {
        KernelMeta {
            index_space: n,
            block_size: 256,
            blocks: n.div_ceil(256) as u64,
            passes: 2,
            participants: 4,
            imbalance: 1.25,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(false);
        {
            let _phase = tracer.phase("index");
            tracer.record_kernel("k", Instant::now(), Instant::now(), meta(100));
            tracer.instant("marker");
        }
        assert_eq!(tracer.event_count(), 0);
        assert!(tracer.histogram_summaries().is_empty());
    }

    #[test]
    fn phase_spans_nest_and_balance() {
        let tracer = Tracer::new(true);
        {
            let _outer = tracer.phase("fdbscan");
            {
                let _inner = tracer.phase("main");
                tracer.record_kernel("traverse", Instant::now(), Instant::now(), meta(64));
            }
        }
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        // Recording order: innermost closes first.
        assert_eq!(events[0].label, "traverse");
        assert_eq!(events[0].path, "fdbscan/main");
        assert_eq!(events[1].label, "main");
        assert_eq!(events[1].path, "fdbscan");
        assert_eq!(events[2].label, "fdbscan");
        assert_eq!(events[2].path, "");
        // Inner spans lie within the outer span.
        assert!(events[1].start_ns >= events[2].start_ns);
        assert!(events[1].end_ns <= events[2].end_ns);
        assert!(tracer.current_path().is_empty(), "stack must balance");
    }

    #[test]
    fn kernel_meta_survives_export() {
        let tracer = Tracer::new(true);
        let start = Instant::now();
        tracer.record_kernel("bvh.build", start, start + Duration::from_micros(10), meta(1000));
        let chrome = tracer.export_chrome();
        let parsed = crate::json::parse(&chrome).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let kernel = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("bvh.build"))
            .expect("kernel event present");
        assert_eq!(kernel.get("ph").unwrap().as_str(), Some("X"));
        let args = kernel.get("args").unwrap();
        assert_eq!(args.get("index_space").unwrap().as_f64(), Some(1000.0));
        assert_eq!(args.get("imbalance").unwrap().as_f64(), Some(1.25));
        assert_eq!(args.get("occupancy").unwrap().as_f64(), Some(0.8));
    }

    #[test]
    fn instant_events_have_zero_duration() {
        let tracer = Tracer::new(true);
        tracer.instant("fallback: g-dbscan -> densebox");
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SpanKind::Instant);
        assert_eq!(events[0].duration_ns(), 0);
    }

    #[test]
    fn histogram_buckets_cover_value() {
        let histogram = Histogram::default();
        for ns in [0u64, 1, 2, 3, 255, 256, 1023, 1 << 40, u64::MAX] {
            let index = Histogram::bucket_index(ns);
            let (lower, upper) = Histogram::bucket_range(index);
            assert!((lower..=upper).contains(&ns), "ns={ns} index={index} range=({lower},{upper})");
            histogram.record(ns);
        }
        assert_eq!(histogram.count(), 9);
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let histogram = Histogram::default();
        for ns in 1..=100u64 {
            histogram.record(ns * 10);
        }
        let p50 = histogram.quantile_upper_bound(0.50);
        let p95 = histogram.quantile_upper_bound(0.95);
        // Values run 10..=1000; p50 true value 500 → bucket [512,1023]
        // upper bound clamped to observed max.
        assert!(p50 >= 500, "p50 {p50}");
        assert!(p95 >= 950, "p95 {p95}");
        assert!(p95 <= 1000, "p95 {p95} clamped to max");
        assert_eq!(histogram.summarize("x").max_ns, 1000);
    }

    #[test]
    fn export_text_mentions_spans() {
        let tracer = Tracer::new(true);
        {
            let _phase = tracer.phase("index");
            let start = Instant::now();
            tracer.record_kernel("grid.build", start, start + Duration::from_micros(5), meta(10));
        }
        let text = tracer.export_text();
        assert!(text.contains("index"));
        assert!(text.contains("grid.build"));
        assert!(text.contains("occ="));
    }

    #[test]
    fn clear_discards_events() {
        let tracer = Tracer::new(true);
        tracer.instant("x");
        tracer.clear();
        assert_eq!(tracer.event_count(), 0);
    }
}
