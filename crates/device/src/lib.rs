#![warn(missing_docs)]

//! A simulated data-parallel device.
//!
//! The paper executes every phase of DBSCAN as a *batched GPU kernel*: all
//! threads launch together over an index space, synchronize only at kernel
//! boundaries, and communicate through device-resident atomics. Rust's GPU
//! tooling is not yet mature enough to express the tree traversals the
//! paper relies on, so this crate substitutes a software device with the
//! same execution model:
//!
//! * [`Device::launch`] runs a kernel body for every index of an index
//!   space on a persistent worker pool, in fixed-size blocks
//!   (grid-stride), and returns only when the whole launch has completed —
//!   a kernel boundary is a synchronization point, exactly as on a GPU.
//! * [`counters::Counters`] are device-wide "hardware counters" (distance
//!   computations, tree nodes visited, union-find operations, …). The
//!   benchmark harness reports these alongside wall time because the
//!   reproduction machine may have far fewer cores than a V100 has SMs;
//!   work counts are what transfer.
//! * [`memory::MemoryTracker`] enforces a device memory budget so the
//!   paper's out-of-memory behaviour (G-DBSCAN's adjacency graph) can be
//!   reproduced deterministically.
//! * [`shared::SharedMut`] and the atomic views in [`shared`] are the
//!   device-memory abstraction kernels use to write results: disjoint
//!   per-thread writes or explicit atomics, never locks inside a kernel.
//!
//! # Memory ordering
//!
//! Kernels use `Relaxed` atomics internally (as the GPU originals do);
//! cross-kernel happens-before is provided by the launch barrier: the pool
//! joins every block before [`Device::launch`] returns, and the next
//! launch's work distribution acquires what the previous one released.
//!
//! # Example
//!
//! ```
//! use fdbscan_device::{Device, DeviceConfig, SharedMut};
//!
//! let device = Device::new(DeviceConfig::default().with_workers(2));
//! let mut squares = vec![0u64; 1000];
//! {
//!     let view = SharedMut::new(&mut squares);
//!     // One kernel: disjoint per-index writes need no atomics.
//!     device.launch(1000, |i| unsafe { view.write(i, (i * i) as u64) });
//! }
//! // Next kernel sees the previous one's writes (launch barrier).
//! let sum = device.reduce(1000, 0u64, |i| squares[i], |a, b| a + b);
//! assert_eq!(sum, (0..1000u64).map(|i| i * i).sum());
//! ```

pub mod arena;
pub mod backend;
pub mod cancel;
pub mod counters;
pub mod fault;
pub mod json;
pub mod memory;
pub mod metrics;
pub mod pool;
pub mod shared;
pub mod snapshot;
pub mod trace;

pub use arena::{ArenaBuf, ArenaStats, BufferArena};
pub use backend::Backend;
pub use cancel::{CancelCause, CancelToken};
pub use counters::{Counters, CountersSnapshot};
pub use fault::{FaultPlan, FaultSite, MessageFault};
pub use memory::{DeviceError, MemoryReservation, MemoryTracker};
pub use metrics::{Counter, ExpositionStats, Gauge, MetricHistogram, MetricUnit, MetricsRegistry};
pub use pool::{LaunchProfile, WorkerPool};
pub use shared::SharedMut;
pub use snapshot::{Checkpointable, PipelineCheckpoint, RunManifest, SnapshotError};
pub use trace::{
    Histogram, HistogramSnapshot, HistogramSummary, KernelMeta, PhaseSpan, SpanKind, SpanRecord,
    TraceFormat, Tracer,
};

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pool::LaunchFailure;

/// Configuration for a simulated device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Execution engine for kernel launches (see [`Backend`]):
    /// deterministic in-order sequential, or the threaded worker pool.
    pub backend: Backend,
    /// Indices per block (the work-distribution granularity, analogous to
    /// a CUDA thread block).
    pub block_size: usize,
    /// Device memory budget in bytes. `None` = unlimited.
    pub memory_budget: Option<usize>,
    /// Deterministic fault-injection schedule. `None` = no injection.
    pub fault_plan: Option<FaultPlan>,
    /// Cooperative kernel watchdog: a launch running longer than this is
    /// cancelled at the next block boundary and fails with
    /// [`DeviceError::KernelTimeout`]. `None` = no watchdog.
    pub kernel_timeout: Option<Duration>,
    /// Force-enables tracing regardless of the environment. When `false`
    /// (the default), tracing is enabled iff `FDBSCAN_TRACE` is set (see
    /// [`trace::Tracer::from_env`]).
    pub tracing: bool,
    /// BVH branching factor the tree index derives for traversal: `2`
    /// keeps the binary rope layout (the oracle path), `8` additionally
    /// collapses the tree into wide nodes whose children are tested by
    /// one SIMD lane kernel per step. Defaults from `FDBSCAN_BVH_WIDTH`
    /// (`2`/`binary` or `8`/`wide`); unset or unrecognized = binary.
    pub bvh_width: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            // `FDBSCAN_BACKEND` selects the engine; explicit builder
            // calls (`with_backend`, `with_workers`, `sequential`)
            // override it. Default: threaded, auto worker count.
            backend: Backend::from_env().unwrap_or_else(Backend::default_backend),
            block_size: 256,
            memory_budget: None,
            fault_plan: None,
            kernel_timeout: None,
            tracing: false,
            bvh_width: bvh_width_from_env().unwrap_or(2),
        }
    }
}

/// Parses `FDBSCAN_BVH_WIDTH`. Unset or unrecognized values yield
/// `None` (binary default) rather than an error, matching the lenient
/// `FDBSCAN_BACKEND` convention.
fn bvh_width_from_env() -> Option<usize> {
    match std::env::var("FDBSCAN_BVH_WIDTH").ok()?.trim().to_ascii_lowercase().as_str() {
        "2" | "binary" => Some(2),
        "8" | "wide" => Some(8),
        _ => None,
    }
}

impl DeviceConfig {
    /// A fully sequential device ([`Backend::Sequential`]): blocks run
    /// inline on the launching thread, in ascending index order. The
    /// deterministic counter/regression oracle, and the baseline in
    /// scaling studies.
    pub fn sequential() -> Self {
        Self { backend: Backend::Sequential, ..Self::default() }
    }

    /// Sets the execution backend explicitly (overriding any
    /// `FDBSCAN_BACKEND` environment selection).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker count: `0` selects [`Backend::Sequential`], any
    /// other count the threaded backend with exactly that many workers.
    /// (The launching thread always participates, so total parallelism
    /// is `workers + 1`.)
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.backend =
            if workers == 0 { Backend::Sequential } else { Backend::Threaded { workers } };
        self
    }

    /// Like [`DeviceConfig::with_workers`], but only a *suggestion*: an
    /// explicit `FDBSCAN_BACKEND` environment selection wins. Test
    /// suites use this for their default devices so every suite gains a
    /// backend axis without forfeiting its usual configuration.
    pub fn with_suggested_workers(self, workers: usize) -> Self {
        if Backend::from_env().is_some() {
            self
        } else {
            self.with_workers(workers)
        }
    }

    /// Sets the block size (must be nonzero).
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be nonzero");
        self.block_size = block_size;
        self
    }

    /// Sets the device memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attaches a deterministic fault-injection schedule (see
    /// [`fault::FaultPlan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the cooperative kernel watchdog. Launches exceeding
    /// `timeout` are cancelled at the next block boundary; a kernel that
    /// never yields within a single block cannot be cancelled (same
    /// limitation as a hardware watchdog that only resets between work
    /// units).
    pub fn with_kernel_timeout(mut self, timeout: Duration) -> Self {
        self.kernel_timeout = Some(timeout);
        self
    }

    /// Sets the BVH branching factor explicitly (overriding any
    /// `FDBSCAN_BVH_WIDTH` environment selection). Only widths `2`
    /// (binary ropes) and `8` (SIMD wide nodes) exist.
    pub fn with_bvh_width(mut self, width: usize) -> Self {
        assert!(width == 2 || width == 8, "BVH width must be 2 or 8, got {width}");
        self.bvh_width = width;
        self
    }

    /// Enables span recording (see [`trace::Tracer`]) without requiring
    /// the `FDBSCAN_TRACE` environment variable. Traces enabled this way
    /// are read back programmatically via [`Device::tracer`]; they are
    /// only auto-exported on drop when `FDBSCAN_TRACE` names a path.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }
}

/// One stage of a batched launch submission (see
/// [`Device::try_batch_named`]): a labelled kernel over its own index
/// space, enqueued together with the other stages of its batch.
pub struct BatchStage<'a> {
    label: &'static str,
    n: usize,
    kernel: Box<dyn Fn(usize) + Sync + 'a>,
}

impl<'a> BatchStage<'a> {
    /// A stage running `kernel` over the index space `0..n`, appearing
    /// as `label` in traces and histograms.
    pub fn new<F: Fn(usize) + Sync + 'a>(label: &'static str, n: usize, kernel: F) -> Self {
        Self { label, n, kernel: Box::new(kernel) }
    }
}

impl std::fmt::Debug for BatchStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchStage").field("label", &self.label).field("n", &self.n).finish()
    }
}

/// A simulated data-parallel device: worker pool + counters + memory.
///
/// Cloning is cheap (`Arc` internally); clones share the pool, the
/// counters and the memory tracker, like multiple streams on one GPU.
#[derive(Clone)]
pub struct Device {
    pool: Arc<WorkerPool>,
    backend: Backend,
    counters: Arc<Counters>,
    memory: Arc<MemoryTracker>,
    arena: BufferArena,
    block_size: usize,
    /// Device-wide launch ordinal. Like the reservation ordinal, kept
    /// outside [`Counters`] so counter resets cannot re-arm
    /// ordinal-addressed fault injections.
    launch_ordinal: Arc<AtomicU64>,
    fault_plan: Option<Arc<FaultPlan>>,
    kernel_timeout: Option<Duration>,
    bvh_width: usize,
    tracer: Arc<Tracer>,
    /// Per-request cancellation token (see [`Device::with_cancel`]).
    /// `None` on a freshly constructed device; attached per clone, so
    /// one request's token never cancels its neighbors on the shared
    /// pool.
    cancel: Option<CancelToken>,
}

impl Device {
    /// Creates a device from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        assert!(config.block_size > 0, "block size must be nonzero");
        let counters = Arc::new(Counters::default());
        let fault_plan = config.fault_plan.map(Arc::new);
        let memory = Arc::new(MemoryTracker::with_instrumentation(
            config.memory_budget,
            Arc::clone(&counters),
            fault_plan.clone(),
        ));
        // A one-worker threaded pool would spend its time handing blocks
        // across threads for zero extra parallelism (the launching thread
        // always participates). Spawn no workers there; `run_on_backend`
        // routes the empty pool through the in-order inline engine.
        let pool_workers = match config.backend.effective_workers() {
            1 => 0,
            w => w,
        };
        Self {
            pool: Arc::new(WorkerPool::new(pool_workers)),
            backend: config.backend,
            arena: BufferArena::new(Arc::clone(&memory)),
            memory,
            counters,
            block_size: config.block_size,
            launch_ordinal: Arc::new(AtomicU64::new(0)),
            fault_plan,
            kernel_timeout: config.kernel_timeout,
            bvh_width: config.bvh_width,
            cancel: None,
            tracer: Arc::new({
                let tracer = Tracer::from_env();
                if config.tracing {
                    tracer.set_enabled(true);
                }
                tracer
            }),
        }
    }

    /// A device with default configuration (all hardware threads).
    pub fn with_defaults() -> Self {
        Self::new(DeviceConfig::default())
    }

    /// Number of worker threads (excluding the launching thread).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The execution backend this device was constructed with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The device's work-distribution block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The device-wide counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A shareable handle to the device counters (for structures that
    /// outlive a borrow, e.g. a union-find label array).
    pub fn counters_arc(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// The device memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The device's scratch-buffer arena. Shared by all clones; buffers
    /// checked out here are charged against this device's memory
    /// tracker and recycled across kernels, phases, and runs.
    pub fn arena(&self) -> &BufferArena {
        &self.arena
    }

    /// The fault plan attached at construction, if any. Read by
    /// `fdbscan-dist` to schedule rank failures.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_deref()
    }

    /// The configured kernel watchdog timeout, if any.
    pub fn kernel_timeout(&self) -> Option<Duration> {
        self.kernel_timeout
    }

    /// The BVH branching factor traversals on this device should use
    /// (`2` = binary ropes, `8` = SIMD wide nodes).
    pub fn bvh_width(&self) -> usize {
        self.bvh_width
    }

    /// A clone of this device with a per-request [`CancelToken`]
    /// attached: the stream analogue. The clone shares the pool,
    /// counters, memory tracker, and arena, but its launch loop checks
    /// `token` **between** kernel launches (and between batched
    /// stages), and the token's deadline caps each launch's watchdog
    /// deadline so a stalled kernel is abandoned at the next block
    /// boundary. A fired token surfaces as [`DeviceError::Cancelled`]
    /// or [`DeviceError::DeadlineExceeded`]; other clones (other
    /// requests) are unaffected.
    pub fn with_cancel(&self, token: CancelToken) -> Device {
        let mut clone = self.clone();
        clone.cancel = Some(token);
        clone
    }

    /// The cancellation token attached via [`Device::with_cancel`], if
    /// any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Errors out if the attached [`CancelToken`] (if any) has fired.
    /// The launch loop calls this between launches; recovery ladders
    /// call it between retries so a cancelled request stops degrading
    /// instead of completing on a lower rung.
    pub fn check_cancelled(&self) -> Result<(), DeviceError> {
        match self.cancel_error() {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// The typed error for the token's current state, if it has fired.
    /// `launch` is the ordinal the *next* launch would get — the one
    /// cancellation prevented.
    fn cancel_error(&self) -> Option<DeviceError> {
        let launch = self.launch_ordinal.load(Ordering::Relaxed);
        match self.cancel.as_ref()?.fired()? {
            CancelCause::Cancelled => Some(DeviceError::Cancelled { launch }),
            CancelCause::DeadlineExceeded => Some(DeviceError::DeadlineExceeded { launch }),
        }
    }

    /// The pool deadline for one launch: the watchdog deadline capped
    /// by the token deadline. The flag says the token was binding, so a
    /// pool timeout is the request's deadline expiring (surface
    /// [`DeviceError::DeadlineExceeded`]), not a hung kernel.
    fn launch_deadline(&self) -> (Option<Instant>, bool) {
        let watchdog = self.kernel_timeout.map(|t| Instant::now() + t);
        let token = self.cancel.as_ref().and_then(|t| t.deadline());
        match (watchdog, token) {
            (Some(w), Some(t)) if t <= w => (Some(t), true),
            (None, Some(t)) => (Some(t), true),
            (w, _) => (w, false),
        }
    }

    /// The device's trace sink. Shared by all clones; a no-op unless
    /// tracing was enabled (via [`DeviceConfig::with_tracing`] or the
    /// `FDBSCAN_TRACE` environment variable).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A shareable handle to the trace sink.
    pub fn tracer_arc(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    /// Number of launches started over this device's lifetime (both
    /// fallible and panicking APIs). Unlike counters, never reset — this
    /// is the ordinal space [`FaultPlan`] launch faults are addressed in.
    pub fn launches_started(&self) -> u64 {
        self.launch_ordinal.load(Ordering::Relaxed)
    }

    /// Number of launches currently executing on the worker pool —
    /// an occupancy gauge for telemetry scrapes.
    pub fn active_launches(&self) -> usize {
        self.pool.active_launches()
    }

    /// Core fallible launch: assigns the launch ordinal, arms the
    /// watchdog deadline, and dispatches one stage (see
    /// [`Device::run_stage`]).
    fn run_fallible(
        &self,
        n: usize,
        label: &'static str,
        body: &(dyn Fn(Range<usize>) + Sync),
    ) -> Result<(), DeviceError> {
        // Cancellation point: a fired token stops the request *before*
        // the next launch starts — nothing is counted, no fault ordinal
        // is consumed, the launch simply never happens.
        if let Some(error) = self.cancel_error() {
            return Err(error);
        }
        let launch = self.launch_ordinal.fetch_add(1, Ordering::Relaxed);
        self.counters.kernel_launches.fetch_add(1, Ordering::Relaxed);
        let (deadline, token_binding) = self.launch_deadline();
        let mut result = self.run_stage(launch, n, label, deadline, body);
        if token_binding {
            if let Err(DeviceError::KernelTimeout { launch, .. }) = result {
                result = Err(DeviceError::DeadlineExceeded { launch });
            }
        }
        if result.is_err() {
            self.counters.failed_launches.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Routes one stage to the configured execution engine: the
    /// in-order inline loop ([`Backend::Sequential`]) or the worker
    /// pool's shared-cursor distribution ([`Backend::Threaded`]). Both
    /// honor the same deadline, panic-containment, and profiling
    /// contract.
    fn run_on_backend(
        &self,
        n: usize,
        deadline: Option<Instant>,
        measure: bool,
        kernel: &(dyn Fn(Range<usize>) + Sync),
    ) -> Result<Option<LaunchProfile>, LaunchFailure> {
        match self.backend {
            Backend::Sequential => {
                self.pool.try_sequential_for_blocks(n, self.block_size, deadline, measure, kernel)
            }
            // A threaded backend whose pool spawned no workers (the
            // `threaded:1` case) has exactly one participant — the
            // launching thread — so the in-order inline engine runs the
            // same schedule without the cross-thread handoff.
            Backend::Threaded { .. } if self.pool.workers() == 0 => {
                self.pool.try_sequential_for_blocks(n, self.block_size, deadline, measure, kernel)
            }
            Backend::Threaded { .. } => {
                self.pool.try_parallel_for_blocks(n, self.block_size, deadline, measure, kernel)
            }
        }
    }

    /// One dispatched stage of a launch (a whole single launch, or one
    /// stage of a batched submission): weaves injected stalls/panics
    /// into the block kernel, maps pool failures to [`DeviceError`]
    /// against the owning `launch` ordinal, and — when tracing is
    /// enabled (one relaxed atomic load otherwise) — records a named
    /// kernel span with the stage's execution profile.
    fn run_stage(
        &self,
        launch: u64,
        n: usize,
        label: &'static str,
        deadline: Option<Instant>,
        body: &(dyn Fn(Range<usize>) + Sync),
    ) -> Result<(), DeviceError> {
        let measure = self.tracer.enabled();
        let started = measure.then(Instant::now);
        let result = match self.fault_plan.as_deref() {
            // Fast path: no plan, no wrapping.
            None => self.run_on_backend(n, deadline, measure, body),
            Some(plan) => {
                let wrapped = |range: Range<usize>| {
                    // Blocks are aligned to `block_size`, so the block
                    // index is recoverable from the range start.
                    let block = range.start / self.block_size;
                    if let Some(millis) = plan.stall_millis(launch, block) {
                        self.counters.injected_stalls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    if plan.panic_fires(launch, block) {
                        self.counters.injected_panics.fetch_add(1, Ordering::Relaxed);
                        panic!("{}", FaultSite::KernelPanic { launch, block });
                    }
                    body(range);
                };
                self.run_on_backend(n, deadline, measure, &wrapped)
            }
        };
        match result {
            Ok(profile) => {
                if let (Some(started), Some(profile)) = (started, profile) {
                    self.tracer.record_kernel(
                        label,
                        started,
                        Instant::now(),
                        KernelMeta {
                            index_space: n,
                            block_size: self.block_size,
                            blocks: profile.blocks(),
                            passes: profile.passes(),
                            participants: profile.participants(),
                            imbalance: profile.imbalance(),
                        },
                    );
                }
                Ok(())
            }
            Err(failure) => Err(match failure {
                LaunchFailure::Panicked { payload } => {
                    DeviceError::KernelPanicked { launch, payload }
                }
                LaunchFailure::TimedOut { elapsed } => {
                    DeviceError::KernelTimeout { launch, elapsed }
                }
            }),
        }
    }

    /// Submits a fixed sequence of kernel stages as **one** batched
    /// launch: one launch ordinal, one `kernel_launches` increment, and
    /// one watchdog deadline cover the whole batch, amortizing the
    /// per-launch barrier exactly as enqueueing a kernel graph on a
    /// stream does. Stages still execute strictly in order with a full
    /// device barrier between them (stage `k+1` sees all of stage `k`'s
    /// writes), each stage records its own kernel span under the
    /// batch's phase when tracing, and each executed stage counts in
    /// [`Counters::batched_stages`].
    ///
    /// Fault injection addresses the batch's single launch ordinal:
    /// an injected panic or stall scheduled there fires in whichever
    /// stage first executes the targeted block. A failing stage aborts
    /// the remaining stages and fails the whole batch. Zero-length
    /// stages are skipped (as zero-length launches are no-ops).
    pub fn try_batch_named(
        &self,
        label: &'static str,
        stages: Vec<BatchStage<'_>>,
    ) -> Result<(), DeviceError> {
        // Cancellation point, as in `run_fallible`: a batch whose token
        // fired before submission never starts and counts nothing.
        if let Some(error) = self.cancel_error() {
            return Err(error);
        }
        let launch = self.launch_ordinal.fetch_add(1, Ordering::Relaxed);
        self.counters.kernel_launches.fetch_add(1, Ordering::Relaxed);
        let (deadline, token_binding) = self.launch_deadline();
        let _batch_span = self.tracer.phase(label);
        for stage in &stages {
            if stage.n == 0 {
                continue;
            }
            // Stage boundaries are cancellation points too — the batch
            // has started, so abandoning it here fails the launch.
            if let Some(error) = self.cancel_error() {
                self.counters.failed_launches.fetch_add(1, Ordering::Relaxed);
                return Err(error);
            }
            self.counters.batched_stages.fetch_add(1, Ordering::Relaxed);
            let kernel = &stage.kernel;
            let body = |range: Range<usize>| {
                for i in range {
                    kernel(i);
                }
            };
            if let Err(mut error) = self.run_stage(launch, stage.n, stage.label, deadline, &body) {
                if token_binding {
                    if let DeviceError::KernelTimeout { launch, .. } = error {
                        error = DeviceError::DeadlineExceeded { launch };
                    }
                }
                self.counters.failed_launches.fetch_add(1, Ordering::Relaxed);
                return Err(error);
            }
        }
        Ok(())
    }

    /// Fallible kernel launch over the index space `0..n`.
    ///
    /// Same execution model as [`Device::launch`], but a panicking kernel
    /// body (organic or injected) yields
    /// [`DeviceError::KernelPanicked`] carrying the first panic payload,
    /// and a launch exceeding the configured watchdog timeout yields
    /// [`DeviceError::KernelTimeout`] — in both cases the device (pool,
    /// counters, memory tracker) remains fully usable.
    pub fn try_launch<F>(&self, n: usize, kernel: F) -> Result<(), DeviceError>
    where
        F: Fn(usize) + Sync,
    {
        self.try_launch_named("unnamed", n, kernel)
    }

    /// [`Device::try_launch`] with a kernel label: the launch appears
    /// under `label` in traces, histograms, and panic messages.
    pub fn try_launch_named<F>(
        &self,
        label: &'static str,
        n: usize,
        kernel: F,
    ) -> Result<(), DeviceError>
    where
        F: Fn(usize) + Sync,
    {
        self.run_fallible(n, label, &|range: Range<usize>| {
            for i in range {
                kernel(i);
            }
        })
    }

    /// Fallible parallel reduction over the index space `0..n` (see
    /// [`Device::reduce`] for the `combine` contract). On failure the
    /// partial accumulator is discarded.
    pub fn try_reduce<T, M, C>(
        &self,
        n: usize,
        identity: T,
        map: M,
        combine: C,
    ) -> Result<T, DeviceError>
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        self.try_reduce_named("unnamed", n, identity, map, combine)
    }

    /// [`Device::try_reduce`] with a kernel label.
    pub fn try_reduce_named<T, M, C>(
        &self,
        label: &'static str,
        n: usize,
        identity: T,
        map: M,
        combine: C,
    ) -> Result<T, DeviceError>
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let accumulator: Mutex<T> = Mutex::new(identity.clone());
        self.run_fallible(n, label, &|range: Range<usize>| {
            let mut local = identity.clone();
            for i in range {
                local = combine(local, map(i));
            }
            let mut acc = accumulator.lock();
            let current = acc.clone();
            *acc = combine(current, local);
        })?;
        Ok(accumulator.into_inner())
    }

    /// Launches a kernel over the index space `0..n`.
    ///
    /// Every index is executed exactly once; blocks of `block_size`
    /// consecutive indices are handed to pool workers (the launching
    /// thread participates). The call returns once **all** indices have
    /// executed — a kernel boundary, i.e. a device-wide barrier.
    ///
    /// If the kernel body panics (or the watchdog cancels the launch),
    /// the launch completes distribution and then propagates a panic on
    /// the launching thread. Recoverable callers should prefer
    /// [`Device::try_launch`].
    pub fn launch<F>(&self, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.launch_named("unnamed", n, kernel)
    }

    /// [`Device::launch`] with a kernel label: the launch appears under
    /// `label` in traces and histograms, and a kernel panic or watchdog
    /// timeout propagates a panic naming the kernel.
    pub fn launch_named<F>(&self, label: &'static str, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        if let Err(error) = self.try_launch_named(label, n, kernel) {
            match error {
                DeviceError::KernelPanicked { payload, .. } => {
                    panic!("kernel '{label}' panicked during launch: {payload}")
                }
                other => panic!("kernel '{label}': {other}"),
            }
        }
    }

    /// Parallel reduction over the index space `0..n`.
    ///
    /// `map` produces a value per index; `combine` must be associative and
    /// commutative (block partials are combined in nondeterministic
    /// order). `identity` is the identity of `combine`. Panics on kernel
    /// panic or watchdog timeout; recoverable callers should prefer
    /// [`Device::try_reduce`].
    pub fn reduce<T, M, C>(&self, n: usize, identity: T, map: M, combine: C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        self.reduce_named("unnamed", n, identity, map, combine)
    }

    /// [`Device::reduce`] with a kernel label (see
    /// [`Device::launch_named`] for the label's uses).
    pub fn reduce_named<T, M, C>(
        &self,
        label: &'static str,
        n: usize,
        identity: T,
        map: M,
        combine: C,
    ) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        match self.try_reduce_named(label, n, identity, map, combine) {
            Ok(value) => value,
            Err(DeviceError::KernelPanicked { payload, .. }) => {
                panic!("kernel '{label}' panicked during launch: {payload}")
            }
            Err(other) => panic!("kernel '{label}': {other}"),
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("backend", &self.backend)
            .field("workers", &self.workers())
            .field("block_size", &self.block_size)
            .field("memory_budget", &self.memory.budget())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_covers_every_index_exactly_once() {
        let device = Device::new(DeviceConfig::default().with_workers(3).with_block_size(7));
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        device.launch(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn launch_zero_size_is_noop() {
        let device = Device::with_defaults();
        device.launch(0, |_| panic!("must not run"));
    }

    #[test]
    fn sequential_device_works() {
        let device = Device::new(DeviceConfig::sequential());
        assert_eq!(device.workers(), 0);
        let total = AtomicUsize::new(0);
        device.launch(1000, |i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn reduce_sums_correctly() {
        let device = Device::new(DeviceConfig::default().with_workers(2).with_block_size(13));
        let sum = device.reduce(1001, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, 1000 * 1001 / 2);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let device = Device::with_defaults();
        assert_eq!(device.reduce(0, 42u32, |_| 0, |a, b| a + b), 42);
    }

    #[test]
    fn reduce_max() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let values: Vec<u32> = (0..5000).map(|i| (i * 2654435761u64 % 10007) as u32).collect();
        let expected = *values.iter().max().unwrap();
        let got = device.reduce(values.len(), 0u32, |i| values[i], |a, b| a.max(b));
        assert_eq!(got, expected);
    }

    #[test]
    fn kernel_launch_counter_increments() {
        let device = Device::with_defaults();
        let before = device.counters().snapshot().kernel_launches;
        device.launch(1, |_| {});
        device.launch(1, |_| {});
        let after = device.counters().snapshot().kernel_launches;
        assert_eq!(after - before, 2);
    }

    #[test]
    #[should_panic(expected = "panicked during launch")]
    fn kernel_panic_propagates() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        device.launch(100, |i| {
            if i == 57 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn device_survives_kernel_panic() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            device.launch(100, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable after a kernel panic.
        let total = AtomicUsize::new(0);
        device.launch(100, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn launches_provide_happens_before() {
        // Writes from kernel 1 must be visible to kernel 2 without atomics
        // on the data itself.
        let device = Device::new(DeviceConfig::default().with_workers(3));
        let n = 4096;
        let mut data = vec![0u64; n];
        {
            let view = SharedMut::new(&mut data);
            device.launch(n, |i| unsafe { view.write(i, i as u64 + 1) });
        }
        let sum = device.reduce(n, 0u64, |i| data[i], |a, b| a + b);
        assert_eq!(sum, (1..=n as u64).sum::<u64>());
    }

    #[test]
    fn clones_share_counters() {
        let device = Device::with_defaults();
        let clone = device.clone();
        let before = device.counters().snapshot().kernel_launches;
        clone.launch(1, |_| {});
        assert_eq!(device.counters().snapshot().kernel_launches, before + 1);
    }

    #[test]
    fn try_launch_reports_panic_with_payload_and_ordinal() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        device.launch(10, |_| {}); // launch 0
        let err = device
            .try_launch(100, |i| {
                if i == 57 {
                    panic!("organic fault {i}");
                }
            })
            .unwrap_err();
        match err {
            DeviceError::KernelPanicked { launch, payload } => {
                assert_eq!(launch, 1);
                assert_eq!(payload, "organic fault 57");
            }
            other => panic!("expected KernelPanicked, got {other:?}"),
        }
        assert_eq!(device.counters().snapshot().failed_launches, 1);
        // Device fully usable afterwards.
        let sum = device.try_reduce(100, 0u64, |i| i as u64, |a, b| a + b).unwrap();
        assert_eq!(sum, 99 * 100 / 2);
        assert_eq!(device.launches_started(), 3);
    }

    #[test]
    fn injected_panic_is_deterministic_and_counted() {
        for _ in 0..3 {
            let plan = FaultPlan::new(11).with_kernel_panic_at(1, 2);
            let device = Device::new(
                DeviceConfig::default().with_workers(2).with_block_size(8).with_fault_plan(plan),
            );
            device.try_launch(64, |_| {}).unwrap(); // launch 0: clean
            let err = device.try_launch(64, |_| {}).unwrap_err(); // launch 1
            match err {
                DeviceError::KernelPanicked { launch, payload } => {
                    assert_eq!(launch, 1);
                    assert!(payload.contains("launch 1 block 2"), "payload: {payload}");
                }
                other => panic!("expected KernelPanicked, got {other:?}"),
            }
            assert_eq!(device.counters().snapshot().injected_panics, 1);
            // Ordinal-addressed: the retry (launch 2) succeeds.
            device.try_launch(64, |_| {}).unwrap();
        }
    }

    #[test]
    fn injected_stall_trips_watchdog() {
        let plan = FaultPlan::new(5).with_worker_stall(0, 0, 50);
        let device = Device::new(
            DeviceConfig::sequential()
                .with_block_size(4)
                .with_fault_plan(plan)
                .with_kernel_timeout(Duration::from_millis(10)),
        );
        let err = device.try_launch(64, |_| {}).unwrap_err();
        match err {
            DeviceError::KernelTimeout { launch, elapsed } => {
                assert_eq!(launch, 0);
                assert!(elapsed >= Duration::from_millis(10));
            }
            other => panic!("expected KernelTimeout, got {other:?}"),
        }
        let snap = device.counters().snapshot();
        assert_eq!(snap.injected_stalls, 1);
        assert_eq!(snap.failed_launches, 1);
        // Later launches are unaffected (watchdog deadline is per launch).
        device.try_launch(64, |_| {}).unwrap();
    }

    #[test]
    fn no_timeout_without_watchdog() {
        // A stall without a configured timeout just runs slowly.
        let plan = FaultPlan::new(5).with_worker_stall(0, 0, 20);
        let device =
            Device::new(DeviceConfig::sequential().with_block_size(4).with_fault_plan(plan));
        device.try_launch(8, |_| {}).unwrap();
        assert_eq!(device.counters().snapshot().injected_stalls, 1);
    }

    #[test]
    #[should_panic(expected = "panicked during launch")]
    fn infallible_launch_panics_on_injected_fault() {
        let plan = FaultPlan::new(3).with_kernel_panic_at(0, 0);
        let device = Device::new(DeviceConfig::sequential().with_fault_plan(plan));
        device.launch(10, |_| {});
    }

    #[test]
    #[should_panic(expected = "kernel 'named.kernel' panicked during launch: boom")]
    fn named_launch_panic_carries_label() {
        let device = Device::new(DeviceConfig::sequential());
        device.launch_named("named.kernel", 10, |i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn traced_launch_records_kernel_span() {
        let device = Device::new(DeviceConfig::default().with_workers(2).with_tracing());
        assert!(device.tracer().enabled());
        device.launch_named("square", 1000, |_| {});
        let sum = device.reduce_named("sum", 1000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, 999 * 1000 / 2);
        let events = device.tracer().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].label, "square");
        assert_eq!(events[0].kind, SpanKind::Kernel);
        let meta = events[0].kernel.expect("kernel span has metadata");
        assert_eq!(meta.index_space, 1000);
        assert_eq!(meta.blocks, 4, "1000 indices / 256 block size");
        assert_eq!(meta.participants, 3);
        assert!(meta.imbalance >= 1.0);
        assert_eq!(events[1].label, "sum");
        // Histograms were fed too.
        let labels: Vec<_> =
            device.tracer().histogram_summaries().into_iter().map(|h| h.label).collect();
        assert_eq!(labels, ["square", "sum"]);
    }

    #[test]
    fn untraced_device_records_nothing() {
        let device = Device::new(DeviceConfig::default().with_workers(1));
        device.launch_named("square", 1000, |_| {});
        device.launch(1000, |_| {});
        assert!(!device.tracer().enabled());
        assert_eq!(device.tracer().event_count(), 0);
        assert!(device.tracer().histogram_summaries().is_empty());
    }

    #[test]
    fn clones_share_tracer() {
        let device = Device::new(DeviceConfig::sequential().with_tracing());
        let clone = device.clone();
        clone.launch_named("k", 10, |_| {});
        assert_eq!(device.tracer().event_count(), 1);
    }

    #[test]
    fn zero_size_launch_records_no_span() {
        let device = Device::new(DeviceConfig::sequential().with_tracing());
        device.launch_named("empty", 0, |_| {});
        assert_eq!(device.tracer().event_count(), 0);
    }

    #[test]
    fn device_reservations_are_counted() {
        let device = Device::with_defaults();
        let _r = device.memory().reserve(128).unwrap();
        assert_eq!(device.counters().snapshot().reservations, 1);
        assert_eq!(device.memory().reservations_made(), 1);
    }

    #[test]
    fn batch_counts_one_launch_and_orders_stages() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let n = 4096;
        let mut data = vec![0u64; n];
        let before = device.counters().snapshot();
        {
            let view = SharedMut::new(&mut data);
            device
                .try_batch_named(
                    "batch.test",
                    vec![
                        BatchStage::new("stage.write", n, |i| unsafe { view.write(i, i as u64) }),
                        // Stage barrier: every stage-1 write is visible.
                        BatchStage::new("stage.double", n, |i| unsafe {
                            view.write(i, view.read(i) * 2)
                        }),
                        BatchStage::new("stage.empty", 0, |_| {
                            panic!("zero-size stage must not run")
                        }),
                    ],
                )
                .unwrap();
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
        let delta = device.counters().snapshot().since(&before);
        assert_eq!(delta.kernel_launches, 1, "a batch is one launch");
        assert_eq!(delta.batched_stages, 2, "zero-size stages are skipped");
        assert_eq!(device.launches_started(), 1);
    }

    #[test]
    fn injected_panic_addresses_the_batch_ordinal() {
        let plan = FaultPlan::new(13).with_kernel_panic_at(1, 0);
        let device =
            Device::new(DeviceConfig::sequential().with_block_size(8).with_fault_plan(plan));
        device.try_launch(16, |_| {}).unwrap(); // launch 0: clean
        let err = device
            .try_batch_named(
                "batch.faulty",
                vec![BatchStage::new("a", 16, |_| {}), BatchStage::new("b", 16, |_| {})],
            )
            .unwrap_err(); // launch 1: the batch
        match err {
            DeviceError::KernelPanicked { launch, payload } => {
                assert_eq!(launch, 1);
                assert!(payload.contains("launch 1 block 0"), "payload: {payload}");
            }
            other => panic!("expected KernelPanicked, got {other:?}"),
        }
        let snap = device.counters().snapshot();
        assert_eq!(snap.failed_launches, 1);
        // The first stage took the fault; the batch stopped there.
        assert_eq!(snap.batched_stages, 1);
        // The device stays usable and the ordinal fired exactly once.
        device.try_batch_named("batch.retry", vec![BatchStage::new("a", 16, |_| {})]).unwrap();
    }

    #[test]
    fn traced_batch_records_stage_spans_under_batch_phase() {
        let device = Device::new(DeviceConfig::sequential().with_tracing());
        device
            .try_batch_named(
                "batch.traced",
                vec![BatchStage::new("s1", 10, |_| {}), BatchStage::new("s2", 10, |_| {})],
            )
            .unwrap();
        let events = device.tracer().events();
        let labels: Vec<_> = events.iter().map(|e| e.label.as_ref()).collect();
        assert!(labels.contains(&"s1") && labels.contains(&"s2"), "labels: {labels:?}");
        assert!(labels.contains(&"batch.traced"), "labels: {labels:?}");
        let s1 = events.iter().find(|e| e.label == "s1").unwrap();
        assert_eq!(s1.kind, SpanKind::Kernel);
        assert!(s1.path.contains("batch.traced"), "path: {}", s1.path);
    }

    #[test]
    fn cancelled_token_stops_next_launch_but_not_neighbors() {
        let device = Device::new(DeviceConfig::default().with_workers(2));
        let token = CancelToken::new();
        let request = device.with_cancel(token.clone());
        request.try_launch(64, |_| {}).unwrap(); // token not fired yet
        token.cancel();
        let ran = AtomicUsize::new(0);
        let err = request
            .try_launch(64, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        match err {
            DeviceError::Cancelled { launch } => assert_eq!(launch, 1),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "cancelled launch must not start");
        // The cancelled launch never happened: no ordinal consumed, no
        // counters charged, and the parent device is unaffected.
        assert_eq!(device.launches_started(), 1);
        assert_eq!(device.counters().snapshot().failed_launches, 0);
        device.try_launch(64, |_| {}).unwrap();
    }

    #[test]
    fn expired_token_deadline_blocks_launch_at_entry() {
        let device = Device::new(DeviceConfig::sequential());
        let request =
            device.with_cancel(CancelToken::with_deadline(Instant::now() - Duration::from_secs(1)));
        let err = request.try_launch(64, |_| {}).unwrap_err();
        assert!(matches!(err, DeviceError::DeadlineExceeded { launch: 0 }), "got {err:?}");
        let batch_err = request
            .try_batch_named("b", vec![BatchStage::new("s", 16, |_| panic!("must not run"))])
            .unwrap_err();
        assert!(matches!(batch_err, DeviceError::DeadlineExceeded { .. }), "got {batch_err:?}");
        assert_eq!(device.launches_started(), 0);
    }

    #[test]
    fn token_deadline_interrupts_stalled_launch_as_deadline_exceeded() {
        // No watchdog configured: the token's deadline alone caps the
        // pool deadline, and the mid-launch timeout is diagnosed as the
        // request's deadline, not a hung kernel.
        let plan = FaultPlan::new(7).with_worker_stall(0, 0, 50);
        let device =
            Device::new(DeviceConfig::sequential().with_block_size(4).with_fault_plan(plan));
        let request = device.with_cancel(CancelToken::with_timeout(Duration::from_millis(10)));
        let err = request.try_launch(64, |_| {}).unwrap_err();
        assert!(matches!(err, DeviceError::DeadlineExceeded { launch: 0 }), "got {err:?}");
        assert_eq!(device.counters().snapshot().failed_launches, 1);
        // The shared pool is fine; an un-cancelled clone keeps working.
        device.try_launch(64, |_| {}).unwrap();
    }

    #[test]
    fn watchdog_timeout_still_reported_when_it_binds_first() {
        // Token deadline far away, watchdog tight: the stall is a hung
        // kernel, and must keep its KernelTimeout diagnosis.
        let plan = FaultPlan::new(7).with_worker_stall(0, 0, 50);
        let device = Device::new(
            DeviceConfig::sequential()
                .with_block_size(4)
                .with_fault_plan(plan)
                .with_kernel_timeout(Duration::from_millis(10)),
        );
        let request = device.with_cancel(CancelToken::with_timeout(Duration::from_secs(3600)));
        let err = request.try_launch(64, |_| {}).unwrap_err();
        assert!(matches!(err, DeviceError::KernelTimeout { launch: 0, .. }), "got {err:?}");
    }

    #[test]
    fn cancel_between_batched_stages_fails_the_batch() {
        let device = Device::new(DeviceConfig::sequential());
        let token = CancelToken::new();
        let request = device.with_cancel(token.clone());
        let stage2_ran = AtomicUsize::new(0);
        let err = request
            .try_batch_named(
                "batch.cancelled",
                vec![
                    BatchStage::new("s1", 16, |_| token.cancel()),
                    BatchStage::new("s2", 16, |_| {
                        stage2_ran.fetch_add(1, Ordering::Relaxed);
                    }),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DeviceError::Cancelled { .. }), "got {err:?}");
        assert_eq!(stage2_ran.load(Ordering::Relaxed), 0, "stage after cancel must not run");
        let snap = device.counters().snapshot();
        assert_eq!(snap.batched_stages, 1);
        assert_eq!(snap.failed_launches, 1);
        // Fresh batches on an un-cancelled clone are unaffected.
        device.try_batch_named("batch.ok", vec![BatchStage::new("s", 16, |_| {})]).unwrap();
    }

    #[test]
    fn with_workers_zero_selects_sequential_backend() {
        let device = Device::new(DeviceConfig::default().with_workers(0));
        assert_eq!(device.backend(), Backend::Sequential);
        assert_eq!(device.workers(), 0);
        let device = Device::new(DeviceConfig::default().with_workers(3));
        assert_eq!(device.backend(), Backend::Threaded { workers: 3 });
        assert_eq!(device.workers(), 3);
        assert_eq!(Device::new(DeviceConfig::sequential()).backend(), Backend::Sequential);
    }

    #[test]
    fn threaded_one_worker_runs_on_the_inline_engine() {
        // `threaded:1` has no parallelism to win, so the device spawns
        // no pool threads and the launch runs in-order on the caller.
        let device = Device::new(DeviceConfig::default().with_workers(1));
        assert_eq!(device.backend(), Backend::Threaded { workers: 1 });
        assert_eq!(device.workers(), 0, "no cross-thread handoff at one worker");
        let order = Mutex::new(Vec::new());
        device.launch(100, |i| order.lock().push(i));
        assert_eq!(*order.lock(), (0..100).collect::<Vec<_>>(), "inline engine is in-order");
    }

    #[test]
    fn bvh_width_builder_and_accessor() {
        // The unpinned default follows FDBSCAN_BVH_WIDTH (the CI sweep
        // axis); without it the layout is binary.
        let ambient = match std::env::var("FDBSCAN_BVH_WIDTH").as_deref() {
            Ok("8") | Ok("wide") => 8,
            _ => 2,
        };
        assert_eq!(Device::new(DeviceConfig::sequential()).bvh_width(), ambient);
        // Explicit pins beat the environment in both directions.
        let wide = Device::new(DeviceConfig::sequential().with_bvh_width(8));
        assert_eq!(wide.bvh_width(), 8);
        assert_eq!(wide.clone().bvh_width(), 8, "clones keep the width");
        assert_eq!(Device::new(DeviceConfig::sequential().with_bvh_width(2)).bvh_width(), 2);
    }

    #[test]
    #[should_panic(expected = "BVH width must be 2 or 8")]
    fn bvh_width_rejects_unsupported_widths() {
        let _ = DeviceConfig::sequential().with_bvh_width(4);
    }

    #[test]
    fn explicit_backend_overrides_config() {
        let device =
            Device::new(DeviceConfig::default().with_backend(Backend::Threaded { workers: 2 }));
        assert_eq!(device.backend(), Backend::Threaded { workers: 2 });
        assert_eq!(device.workers(), 2);
    }

    #[test]
    fn sequential_backend_combines_reduce_partials_in_order() {
        // The sequential engine runs blocks in ascending order on one
        // thread, so even a non-commutative combine is deterministic —
        // the property that makes it the regression oracle.
        let device = Device::new(DeviceConfig::sequential().with_block_size(4));
        let digits = device.reduce(10, String::new(), |i| i.to_string(), |a, b| format!("{a}{b}"));
        assert_eq!(digits, "0123456789");
    }

    #[test]
    fn sequential_backend_watchdog_and_recovery_match_threaded() {
        for config in [
            DeviceConfig::sequential().with_block_size(8),
            DeviceConfig::default().with_workers(2).with_block_size(8),
        ] {
            let device = Device::new(config);
            let err = device
                .try_launch(64, |i| {
                    if i == 17 {
                        panic!("backend fault");
                    }
                })
                .unwrap_err();
            assert!(matches!(err, DeviceError::KernelPanicked { .. }), "got {err:?}");
            // The engine survives and the next launch is clean.
            let total = AtomicUsize::new(0);
            device.launch(64, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 64);
        }
    }

    #[test]
    fn device_arena_is_shared_by_clones() {
        let device = Device::with_defaults();
        let clone = device.clone();
        drop(device.arena().take::<u32>(32).unwrap());
        let _buf = clone.arena().take::<u32>(32).unwrap();
        assert_eq!(device.arena().recycled_takes(), 1);
        assert_eq!(device.memory().reservations_made(), 1);
    }
}
