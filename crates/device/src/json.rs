//! Minimal hand-rolled JSON tree: build, serialize, and parse.
//!
//! The workspace is offline (no serde); the observability layer needs
//! machine-readable output (Chrome traces, run reports), so this module
//! provides the smallest JSON surface that covers it: a [`Json`] value
//! tree with a compact writer and a strict recursive-descent parser used
//! by tests to round-trip exporter output.
//!
//! Numbers are split into `U64` / `I64` / `F64` so counters serialize
//! exactly; non-finite floats serialize as `null` (JSON has no NaN).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (serialized exactly).
    U64(u64),
    /// Signed integer (serialized exactly).
    I64(i64),
    /// Floating point; NaN/inf serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object. Keys are ordered (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an `f32` as a JSON number via its shortest decimal
    /// round-trip, so `0.005f32` serializes as `0.005` rather than the
    /// raw f64 widening `0.004999999888241291`. The printed decimal
    /// parses back to the identical f32. Non-finite values widen
    /// directly and serialize as `null`.
    pub fn f32(v: f32) -> Json {
        if v.is_finite() {
            Json::F64(format!("{v}").parse().unwrap_or(v as f64))
        } else {
            Json::F64(v as f64)
        }
    }

    /// Looks up a key of an object (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array (`None` on non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with `indent`-space indentation.
    pub fn to_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 always produces a valid JSON number
                    // (round-trippable shortest form).
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict: the whole input must be one value
/// (surrounded by optional whitespace). Used by tests and tooling to
/// validate exporter output; not a general-purpose parser (no surrogate
/// pair handling in `\u` escapes beyond the BMP).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // at char boundaries is safe via the chars iterator).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| format!("bad number '{text}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize_compact() {
        let value = Json::obj([
            ("name", Json::str("fdbscan")),
            ("n", Json::U64(100)),
            ("ratio", Json::F64(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = value.to_compact();
        assert_eq!(text, r#"{"flags":[true,null],"n":100,"name":"fdbscan","ratio":0.5}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let text = Json::str("a\"b\\c\nd\u{1}").to_compact();
        assert_eq!(text, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn round_trips_through_parse() {
        let value = Json::obj([
            ("label", Json::str("kernel \"x\" \\ node")),
            ("counts", Json::Arr(vec![Json::U64(1), Json::I64(-2), Json::F64(3.25)])),
            ("nested", Json::obj([("empty_arr", Json::Arr(vec![])), ("t", Json::Bool(false))])),
        ]);
        for text in [value.to_compact(), value.to_pretty(2)] {
            assert_eq!(parse(&text).unwrap(), value);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_handles_numbers_and_unicode() {
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("1.5e3").unwrap(), Json::F64(1500.0));
        assert_eq!(parse(r#""A’""#).unwrap(), Json::Str("A’".to_string()));
    }
}
