//! Deterministic fault injection for the simulated device.
//!
//! Real GPU deployments fail in ways unit tests rarely exercise: an
//! allocation fails mid-pipeline, a kernel faults, a kernel never
//! terminates, a rank of a distributed run dies. A [`FaultPlan`] lets
//! tests and chaos harnesses schedule exactly those failures at exact
//! points of a run — the N-th memory reservation, block `i` of kernel
//! launch `K`, the first `A` attempts of distributed rank `r` — so every
//! recovery path in the workspace can be driven deterministically.
//!
//! # Determinism
//!
//! Injection sites are addressed by *ordinals*, not wall time:
//!
//! * reservations are numbered by [`crate::MemoryTracker`] in request
//!   order (`0, 1, 2, …` over the tracker's lifetime),
//! * launches are numbered by `Device` in launch order,
//! * rank attempts are numbered per rank by the distributed driver.
//!
//! An ordinal-addressed fault therefore fires **exactly once** — a retry
//! of the failed operation gets a fresh ordinal and succeeds, which is
//! what makes bounded-retry recovery testable. The byte-threshold OOM
//! ([`FaultPlan::with_oom_above_bytes`]) is the exception: it models a
//! persistently broken allocator and fires on *every* matching
//! reservation, so only stepping down to a smaller algorithm helps.
//!
//! The `seed` does not perturb anything by itself; it labels the
//! scenario and drives [`FaultPlan::derive_ordinal`], which maps
//! `(seed, salt)` to a pseudo-random but fully reproducible ordinal —
//! the way fuzz harnesses pick "a random reservation" without giving up
//! replayability.
//!
//! Every injection is counted in [`crate::Counters`]
//! (`injected_oom` / `injected_panics` / `injected_stalls` /
//! `injected_rank_faults`), so a test can assert that the fault it
//! configured actually fired.

use std::fmt;

use crate::json::Json;

/// Where an injected fault fired. Carried by
/// [`crate::DeviceError::FaultInjected`] and in panic payloads so
/// callers can attribute a failure to its injection site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// An injected out-of-memory on a reservation.
    Reservation {
        /// The reservation ordinal the fault fired at.
        ordinal: u64,
        /// Bytes the reservation asked for.
        bytes: usize,
    },
    /// An injected kernel panic inside a launch.
    KernelPanic {
        /// The launch ordinal.
        launch: u64,
        /// The block index within the launch.
        block: usize,
    },
    /// An injected worker stall inside a launch.
    WorkerStall {
        /// The launch ordinal.
        launch: u64,
        /// The block index within the launch.
        block: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// An injected distributed-rank failure.
    Rank {
        /// The failed rank.
        rank: usize,
        /// The per-rank attempt ordinal that failed.
        attempt: usize,
    },
    /// An injected message-layer fault (distributed halo exchange).
    Message {
        /// The global message ordinal the fault fired at.
        ordinal: u64,
    },
    /// An injected permanent rank death at a distributed phase boundary.
    RankDeath {
        /// The rank that died.
        rank: usize,
        /// The phase ordinal it died at (interpreted by `fdbscan-dist`).
        phase: u8,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Reservation { ordinal, bytes } => {
                write!(f, "reservation #{ordinal} ({bytes} B)")
            }
            FaultSite::KernelPanic { launch, block } => {
                write!(f, "kernel panic at launch {launch} block {block}")
            }
            FaultSite::WorkerStall { launch, block, millis } => {
                write!(f, "worker stall of {millis} ms at launch {launch} block {block}")
            }
            FaultSite::Rank { rank, attempt } => {
                write!(f, "rank {rank} failure at attempt {attempt}")
            }
            FaultSite::Message { ordinal } => {
                write!(f, "message fault at ordinal {ordinal}")
            }
            FaultSite::RankDeath { rank, phase } => {
                write!(f, "permanent death of rank {rank} at phase {phase}")
            }
        }
    }
}

/// What an injected message fault does to a frame in flight. Returned by
/// [`FaultPlan::message_fault`]; interpreted by the simulated transport
/// in `fdbscan-dist`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFault {
    /// The frame is never delivered (the receiver must retransmit).
    Drop,
    /// One payload byte is flipped — the length+checksum framing must
    /// detect it on receipt.
    Corrupt,
    /// Delivery is deferred by this many receive polls (reordering).
    Delay(u64),
}

/// A deterministic schedule of faults to inject into a device.
///
/// Built once, attached to a device via
/// [`crate::DeviceConfig::with_fault_plan`], and consulted by the memory
/// tracker, the launch path, and the distributed driver. See the module
/// docs for the determinism contract.
///
/// # Example
///
/// ```
/// use fdbscan_device::fault::FaultPlan;
/// use fdbscan_device::{Device, DeviceConfig, DeviceError};
///
/// // Fail the very first reservation; every later one succeeds.
/// let plan = FaultPlan::new(42).with_oom_at_reservation(0);
/// let device = Device::new(DeviceConfig::default().with_fault_plan(plan));
/// assert!(matches!(
///     device.memory().reserve(64),
///     Err(DeviceError::OutOfMemory { .. })
/// ));
/// // The retry draws ordinal 1 and succeeds.
/// assert!(device.memory().reserve(64).is_ok());
/// assert_eq!(device.counters().snapshot().injected_oom, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    oom_at_reservation: Option<u64>,
    oom_above_bytes: Option<usize>,
    panic_at: Option<(u64, usize)>,
    stall_at: Option<(u64, usize, u64)>,
    rank_failures: Vec<(usize, usize)>,
    message_drops: Vec<u64>,
    message_corruptions: Vec<u64>,
    message_delays: Vec<(u64, u64)>,
    rank_deaths: Vec<(usize, u8)>,
}

impl FaultPlan {
    /// Creates an empty plan (no faults) labelled with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The scenario seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injects `OutOfMemory` on the reservation with ordinal `n`
    /// (0-based, counted over the memory tracker's lifetime). Fires
    /// exactly once.
    pub fn with_oom_at_reservation(mut self, n: u64) -> Self {
        self.oom_at_reservation = Some(n);
        self
    }

    /// Injects `OutOfMemory` on **every** reservation of at least
    /// `bytes` bytes — a persistently failing allocator, not a one-shot
    /// fault.
    pub fn with_oom_above_bytes(mut self, bytes: usize) -> Self {
        self.oom_above_bytes = Some(bytes);
        self
    }

    /// Injects a kernel panic in block `block` of launch ordinal
    /// `launch` (0-based). Fires exactly once; if the launch has fewer
    /// blocks, the fault never fires.
    pub fn with_kernel_panic_at(mut self, launch: u64, block: usize) -> Self {
        self.panic_at = Some((launch, block));
        self
    }

    /// Stalls the worker executing block `block` of launch `launch` for
    /// `millis` milliseconds — the probe for the watchdog
    /// ([`crate::DeviceConfig::with_kernel_timeout`]). Fires exactly
    /// once.
    pub fn with_worker_stall(mut self, launch: u64, block: usize, millis: u64) -> Self {
        self.stall_at = Some((launch, block, millis));
        self
    }

    /// Fails the first `attempts` attempts of distributed rank `rank`
    /// (consulted by `fdbscan-dist`; a plain device run never reads
    /// this).
    pub fn with_rank_failure(mut self, rank: usize, attempts: usize) -> Self {
        self.rank_failures.push((rank, attempts));
        self
    }

    /// Drops the message with global ordinal `n` (0-based, counted over
    /// the simulated transport's lifetime). The frame is never
    /// delivered; a retransmission draws a fresh ordinal and succeeds.
    pub fn with_message_drop(mut self, n: u64) -> Self {
        self.message_drops.push(n);
        self
    }

    /// Corrupts one payload byte of the message with ordinal `n`. The
    /// receiver's length+checksum framing must reject the frame and
    /// request a retransmission (fresh ordinal, fires once).
    pub fn with_message_corruption(mut self, n: u64) -> Self {
        self.message_corruptions.push(n);
        self
    }

    /// Delays delivery of the message with ordinal `n` by `slots`
    /// receive polls — out-of-order delivery, not loss.
    pub fn with_message_delay(mut self, n: u64, slots: u64) -> Self {
        self.message_delays.push((n, slots));
        self
    }

    /// Permanently kills distributed rank `rank` at phase-boundary
    /// ordinal `phase` (interpreted by `fdbscan-dist`: 0 = halo,
    /// 1 = local, 2 = merge). Unlike [`FaultPlan::with_rank_failure`],
    /// a dead rank never comes back: its work must be re-sharded to
    /// survivors or (for a merge coordinator) a successor elected.
    pub fn with_rank_death(mut self, rank: usize, phase: u8) -> Self {
        self.rank_deaths.push((rank, phase));
        self
    }

    /// Whether the reservation with `ordinal` asking for `bytes` must
    /// fail.
    pub fn oom_fires(&self, ordinal: u64, bytes: usize) -> bool {
        self.oom_at_reservation == Some(ordinal)
            || self.oom_above_bytes.is_some_and(|limit| bytes >= limit)
    }

    /// The stall duration for `(launch, block)`, if one is scheduled.
    pub fn stall_millis(&self, launch: u64, block: usize) -> Option<u64> {
        match self.stall_at {
            Some((l, b, ms)) if l == launch && b == block => Some(ms),
            _ => None,
        }
    }

    /// Whether `(launch, block)` must panic.
    pub fn panic_fires(&self, launch: u64, block: usize) -> bool {
        self.panic_at == Some((launch, block))
    }

    /// Whether the `attempt`-th attempt (0-based) of `rank` must fail.
    pub fn rank_fails(&self, rank: usize, attempt: usize) -> bool {
        self.rank_failures.iter().any(|&(r, a)| r == rank && attempt < a)
    }

    /// The fault (if any) scheduled for the message with global ordinal
    /// `n`. Drop wins over corruption wins over delay when a test
    /// schedules several at one ordinal.
    pub fn message_fault(&self, n: u64) -> Option<MessageFault> {
        if self.message_drops.contains(&n) {
            return Some(MessageFault::Drop);
        }
        if self.message_corruptions.contains(&n) {
            return Some(MessageFault::Corrupt);
        }
        self.message_delays
            .iter()
            .find(|&&(ord, _)| ord == n)
            .map(|&(_, slots)| MessageFault::Delay(slots))
    }

    /// Whether `rank` dies permanently at phase-boundary ordinal
    /// `phase`.
    pub fn rank_dies(&self, rank: usize, phase: u8) -> bool {
        self.rank_deaths.iter().any(|&(r, p)| r == rank && p == phase)
    }

    /// Whether the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.oom_at_reservation.is_none()
            && self.oom_above_bytes.is_none()
            && self.panic_at.is_none()
            && self.stall_at.is_none()
            && self.rank_failures.is_empty()
            && self.message_drops.is_empty()
            && self.message_corruptions.is_empty()
            && self.message_delays.is_empty()
            && self.rank_deaths.is_empty()
    }

    /// Serializes the plan as a JSON tree — recorded in a
    /// [`crate::snapshot::RunManifest`] so a failed run can be replayed
    /// with the exact faults that killed it.
    pub fn to_json(&self) -> Json {
        let pair = |a: u64, b: usize| Json::Arr(vec![Json::U64(a), Json::U64(b as u64)]);
        Json::obj([
            ("seed", Json::U64(self.seed)),
            ("oom_at_reservation", self.oom_at_reservation.map_or(Json::Null, Json::U64)),
            ("oom_above_bytes", self.oom_above_bytes.map_or(Json::Null, |b| Json::U64(b as u64))),
            ("panic_at", self.panic_at.map_or(Json::Null, |(l, b)| pair(l, b))),
            (
                "stall_at",
                self.stall_at.map_or(Json::Null, |(l, b, ms)| {
                    Json::Arr(vec![Json::U64(l), Json::U64(b as u64), Json::U64(ms)])
                }),
            ),
            (
                "rank_failures",
                Json::Arr(self.rank_failures.iter().map(|&(r, a)| pair(r as u64, a)).collect()),
            ),
            (
                "message_drops",
                Json::Arr(self.message_drops.iter().map(|&n| Json::U64(n)).collect()),
            ),
            (
                "message_corruptions",
                Json::Arr(self.message_corruptions.iter().map(|&n| Json::U64(n)).collect()),
            ),
            (
                "message_delays",
                Json::Arr(
                    self.message_delays
                        .iter()
                        .map(|&(n, s)| Json::Arr(vec![Json::U64(n), Json::U64(s)]))
                        .collect(),
                ),
            ),
            (
                "rank_deaths",
                Json::Arr(
                    self.rank_deaths.iter().map(|&(r, p)| pair(r as u64, p as usize)).collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a plan from [`FaultPlan::to_json`] output.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        fn u64_at(items: &[Json], i: usize) -> Result<u64, String> {
            match items.get(i) {
                Some(Json::U64(v)) => Ok(*v),
                _ => Err(format!("fault plan: expected u64 at index {i}")),
            }
        }
        fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>, String> {
            match value.get(key) {
                Some(Json::Null) | None => Ok(None),
                Some(Json::U64(v)) => Ok(Some(*v)),
                _ => Err(format!("fault plan: field '{key}' is not a u64")),
            }
        }
        fn opt_tuple(value: &Json, key: &str, arity: usize) -> Result<Option<Vec<u64>>, String> {
            match value.get(key) {
                Some(Json::Null) | None => Ok(None),
                Some(Json::Arr(items)) if items.len() == arity => {
                    Ok(Some((0..arity).map(|i| u64_at(items, i)).collect::<Result<_, _>>()?))
                }
                _ => Err(format!("fault plan: field '{key}' is not a {arity}-tuple")),
            }
        }
        let seed = match value.get("seed") {
            Some(Json::U64(v)) => *v,
            _ => return Err("fault plan: missing seed".to_string()),
        };
        fn pair_list(value: &Json, key: &str) -> Result<Vec<(u64, u64)>, String> {
            match value.get(key) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|item| match item.as_arr() {
                        Some(pair) if pair.len() == 2 => Ok((u64_at(pair, 0)?, u64_at(pair, 1)?)),
                        _ => Err(format!("fault plan: bad '{key}' entry")),
                    })
                    .collect(),
                Some(Json::Null) | None => Ok(Vec::new()),
                _ => Err(format!("fault plan: '{key}' is not an array")),
            }
        }
        fn u64_list(value: &Json, key: &str) -> Result<Vec<u64>, String> {
            match value.get(key) {
                Some(Json::Arr(items)) => {
                    (0..items.len()).map(|i| u64_at(items, i)).collect::<Result<_, _>>()
                }
                Some(Json::Null) | None => Ok(Vec::new()),
                _ => Err(format!("fault plan: '{key}' is not an array")),
            }
        }
        let rank_failures =
            pair_list(value, "rank_failures")?.into_iter().map(|(r, a)| (r as usize, a as usize));
        let rank_deaths =
            pair_list(value, "rank_deaths")?.into_iter().map(|(r, p)| (r as usize, p as u8));
        Ok(Self {
            seed,
            oom_at_reservation: opt_u64(value, "oom_at_reservation")?,
            oom_above_bytes: opt_u64(value, "oom_above_bytes")?.map(|b| b as usize),
            panic_at: opt_tuple(value, "panic_at", 2)?.map(|t| (t[0], t[1] as usize)),
            stall_at: opt_tuple(value, "stall_at", 3)?.map(|t| (t[0], t[1] as usize, t[2])),
            rank_failures: rank_failures.collect(),
            message_drops: u64_list(value, "message_drops")?,
            message_corruptions: u64_list(value, "message_corruptions")?,
            message_delays: pair_list(value, "message_delays")?,
            rank_deaths: rank_deaths.collect(),
        })
    }

    /// Deterministically derives an ordinal in `0..bound` from the plan
    /// seed and a caller-chosen `salt` (SplitMix64). Lets a fuzzing
    /// harness target "a random reservation of run #salt" while staying
    /// replayable from `(seed, salt)` alone.
    pub fn derive_ordinal(&self, salt: u64, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        let mut z = self.seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert!(!plan.oom_fires(0, usize::MAX));
        assert!(!plan.panic_fires(0, 0));
        assert!(plan.stall_millis(0, 0).is_none());
        assert!(!plan.rank_fails(0, 0));
    }

    #[test]
    fn oom_ordinal_fires_exactly_there() {
        let plan = FaultPlan::new(1).with_oom_at_reservation(3);
        assert!(!plan.oom_fires(2, 100));
        assert!(plan.oom_fires(3, 100));
        assert!(!plan.oom_fires(4, 100));
    }

    #[test]
    fn oom_threshold_fires_repeatedly() {
        let plan = FaultPlan::new(1).with_oom_above_bytes(1024);
        assert!(plan.oom_fires(0, 1024));
        assert!(plan.oom_fires(99, 4096));
        assert!(!plan.oom_fires(0, 1023));
    }

    #[test]
    fn panic_and_stall_address_launch_and_block() {
        let plan = FaultPlan::new(1).with_kernel_panic_at(5, 2).with_worker_stall(6, 0, 50);
        assert!(plan.panic_fires(5, 2));
        assert!(!plan.panic_fires(5, 3));
        assert!(!plan.panic_fires(4, 2));
        assert_eq!(plan.stall_millis(6, 0), Some(50));
        assert_eq!(plan.stall_millis(6, 1), None);
    }

    #[test]
    fn rank_failures_cover_first_attempts() {
        let plan = FaultPlan::new(1).with_rank_failure(2, 2);
        assert!(plan.rank_fails(2, 0));
        assert!(plan.rank_fails(2, 1));
        assert!(!plan.rank_fails(2, 2));
        assert!(!plan.rank_fails(1, 0));
    }

    #[test]
    fn derived_ordinals_are_reproducible_and_bounded() {
        let plan = FaultPlan::new(99);
        let a = plan.derive_ordinal(0, 17);
        assert_eq!(a, plan.derive_ordinal(0, 17), "same inputs, same ordinal");
        assert!(a < 17);
        // Different salts should (generically) land elsewhere.
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|salt| plan.derive_ordinal(salt, 1_000_000)).collect();
        assert!(spread.len() > 16, "derivation must actually spread");
    }

    #[test]
    fn message_faults_address_ordinals_with_precedence() {
        let plan = FaultPlan::new(1)
            .with_message_drop(3)
            .with_message_corruption(5)
            .with_message_delay(7, 2)
            .with_message_corruption(3) // drop at 3 wins
            .with_message_delay(5, 9); // corruption at 5 wins
        assert_eq!(plan.message_fault(3), Some(MessageFault::Drop));
        assert_eq!(plan.message_fault(5), Some(MessageFault::Corrupt));
        assert_eq!(plan.message_fault(7), Some(MessageFault::Delay(2)));
        assert_eq!(plan.message_fault(0), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn rank_deaths_address_rank_and_phase() {
        let plan = FaultPlan::new(1).with_rank_death(2, 1);
        assert!(plan.rank_dies(2, 1));
        assert!(!plan.rank_dies(2, 0));
        assert!(!plan.rank_dies(1, 1));
        assert!(!plan.is_empty());
    }

    #[test]
    fn json_round_trips_every_field() {
        let plan = FaultPlan::new(42)
            .with_oom_at_reservation(3)
            .with_oom_above_bytes(1 << 20)
            .with_kernel_panic_at(5, 2)
            .with_worker_stall(6, 0, 50)
            .with_rank_failure(2, 2)
            .with_rank_failure(0, 1)
            .with_message_drop(4)
            .with_message_corruption(9)
            .with_message_delay(11, 3)
            .with_rank_death(1, 2);
        assert_eq!(FaultPlan::from_json(&plan.to_json()), Ok(plan));
        let empty = FaultPlan::new(7);
        assert_eq!(FaultPlan::from_json(&empty.to_json()), Ok(empty));
        assert!(FaultPlan::from_json(&Json::Null).is_err());
    }

    #[test]
    fn site_display_names_the_site() {
        let s = FaultSite::Reservation { ordinal: 4, bytes: 128 }.to_string();
        assert!(s.contains("#4") && s.contains("128"));
        let s = FaultSite::Rank { rank: 1, attempt: 0 }.to_string();
        assert!(s.contains("rank 1"));
    }
}
