//! Execution backend selection.
//!
//! A [`crate::Device`] executes kernel launches through one of two
//! engines behind the same launch/batch API:
//!
//! * [`Backend::Sequential`] — every block runs inline on the launching
//!   thread, in ascending index order. Counters, reduce combine order,
//!   and fault-injection interleavings are fully deterministic, which
//!   makes this backend the regression oracle: work-counter baselines
//!   (`BENCH_hotpaths.json`) and bit-identical replay are defined
//!   against it.
//! * [`Backend::Threaded`] — blocks are pulled from a shared cursor by a
//!   persistent worker pool (the launching thread participates), giving
//!   real wall-clock parallelism. Labels are canonically identical to
//!   the sequential backend (the differential suite enforces this), but
//!   statistics that depend on interleaving — union-find path lengths,
//!   which cluster claims a multi-claimed border first — may differ.
//!
//! The backend is chosen at [`crate::Device`] construction, either
//! explicitly ([`crate::DeviceConfig::with_backend`]) or through the
//! `FDBSCAN_BACKEND` environment variable, so every algorithm and
//! service built on the device runs on both engines unchanged.

/// Which execution engine a device uses for kernel launches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Deterministic in-order execution on the launching thread.
    Sequential,
    /// Persistent worker pool with shared-cursor block distribution.
    Threaded {
        /// Worker threads to spawn (the launching thread always
        /// participates, so total parallelism is `workers + 1`).
        /// `0` means auto: `available_parallelism() - 1`.
        workers: usize,
    },
}

impl Backend {
    /// Environment variable consulted by [`Backend::from_env`] (and by
    /// [`crate::DeviceConfig::default`]): `sequential` (or `seq`),
    /// `threaded` (auto worker count), or `threaded:<N>` (exactly `N`
    /// workers).
    pub const ENV: &'static str = "FDBSCAN_BACKEND";

    /// The backend requested via the `FDBSCAN_BACKEND` environment
    /// variable, if set and well-formed. Unset or unparseable values
    /// yield `None` (callers fall back to their default).
    pub fn from_env() -> Option<Backend> {
        Self::parse(&std::env::var(Self::ENV).ok()?)
    }

    /// Parses a backend spec: `sequential`/`seq`, `threaded`, or
    /// `threaded:<N>`. Case-insensitive; returns `None` on anything
    /// else.
    pub fn parse(spec: &str) -> Option<Backend> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "sequential" | "seq" => Some(Backend::Sequential),
            "threaded" => Some(Backend::Threaded { workers: 0 }),
            other => {
                let workers = other.strip_prefix("threaded:")?.parse().ok()?;
                Some(Backend::Threaded { workers })
            }
        }
    }

    /// The default backend when nothing is requested: threaded with an
    /// auto worker count.
    pub fn default_backend() -> Backend {
        Backend::Threaded { workers: 0 }
    }

    /// Worker threads this backend spawns. Sequential spawns none;
    /// `Threaded { workers: 0 }` resolves the auto count here.
    pub fn effective_workers(&self) -> usize {
        match *self {
            Backend::Sequential => 0,
            Backend::Threaded { workers: 0 } => {
                let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                // The launching thread participates, so spawn hw - 1.
                hw.saturating_sub(1)
            }
            Backend::Threaded { workers } => workers,
        }
    }

    /// `true` for [`Backend::Sequential`].
    pub fn is_sequential(&self) -> bool {
        matches!(self, Backend::Sequential)
    }

    /// Stable short name (`"sequential"` / `"threaded"`) for logs,
    /// replay recipes, and bench records.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sequential => "sequential",
            Backend::Threaded { .. } => "threaded",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Sequential => f.write_str("sequential"),
            Backend::Threaded { workers: 0 } => f.write_str("threaded"),
            Backend::Threaded { workers } => write!(f, "threaded:{workers}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_spellings() {
        assert_eq!(Backend::parse("sequential"), Some(Backend::Sequential));
        assert_eq!(Backend::parse("seq"), Some(Backend::Sequential));
        assert_eq!(Backend::parse(" SEQ "), Some(Backend::Sequential));
        assert_eq!(Backend::parse("threaded"), Some(Backend::Threaded { workers: 0 }));
        assert_eq!(Backend::parse("Threaded:4"), Some(Backend::Threaded { workers: 4 }));
        assert_eq!(Backend::parse("threaded:0"), Some(Backend::Threaded { workers: 0 }));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Backend::parse(""), None);
        assert_eq!(Backend::parse("gpu"), None);
        assert_eq!(Backend::parse("threaded:"), None);
        assert_eq!(Backend::parse("threaded:many"), None);
        assert_eq!(Backend::parse("threaded:-1"), None);
    }

    #[test]
    fn effective_workers_resolves_auto() {
        assert_eq!(Backend::Sequential.effective_workers(), 0);
        assert_eq!(Backend::Threaded { workers: 3 }.effective_workers(), 3);
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(Backend::Threaded { workers: 0 }.effective_workers(), hw.saturating_sub(1));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for backend in [
            Backend::Sequential,
            Backend::Threaded { workers: 0 },
            Backend::Threaded { workers: 7 },
        ] {
            assert_eq!(Backend::parse(&backend.to_string()), Some(backend));
        }
    }
}
