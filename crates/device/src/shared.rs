//! Device-memory views for kernels.
//!
//! GPU kernels write results into device buffers either with *disjoint*
//! per-thread writes (each thread owns its output slot) or with explicit
//! atomics. This module provides both patterns over ordinary Rust slices:
//!
//! * [`SharedMut`] — a `Sync` view over `&mut [T]` permitting unsafe
//!   disjoint writes from many threads (the caller proves disjointness),
//! * [`as_atomic_u32`] / [`as_atomic_u64`] — reinterpret an exclusive
//!   integer slice as a slice of atomics, for label arrays and counters.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64};

/// A shared-mutable view over a slice, for kernels whose threads write
/// disjoint elements.
///
/// The view borrows the slice exclusively, so no other safe access can
/// alias it while the view exists; within the view, writes are raw and the
/// *caller* guarantees that no element is accessed by two threads in the
/// same launch (a data race through this view is undefined behaviour —
/// hence the `unsafe` accessors).
pub struct SharedMut<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

// SAFETY: `SharedMut` only hands out access through `unsafe` methods whose
// contract forbids racing accesses; the wrapper itself is just a pointer.
unsafe impl<'a, T: Send> Sync for SharedMut<'a, T> {}
unsafe impl<'a, T: Send> Send for SharedMut<'a, T> {}

impl<'a, T> SharedMut<'a, T> {
    /// Wraps an exclusive slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold
        // the unique borrow for 'a.
        let cells = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { cells }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// During the current launch, element `i` must not be read or written
    /// by any other thread.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.cells[i].get() = value;
    }

    /// Reads the element at `i`.
    ///
    /// # Safety
    /// During the current launch, element `i` must not be written
    /// concurrently by any thread.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.cells[i].get()
    }

    /// Returns a raw pointer to element `i` (same contract as
    /// [`SharedMut::write`] applies to any use of the pointer).
    #[inline]
    pub fn as_ptr(&self, i: usize) -> *mut T {
        self.cells[i].get()
    }
}

/// Reinterprets an exclusive `u32` slice as atomics.
///
/// `AtomicU32` is guaranteed to have the same in-memory representation as
/// `u32`, and the exclusive borrow rules out non-atomic aliases, so every
/// access through the result is sound.
pub fn as_atomic_u32(slice: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: layout-compatible per std docs; uniqueness from `&mut`.
    unsafe { &*(slice as *mut [u32] as *const [AtomicU32]) }
}

/// Reinterprets an exclusive `u64` slice as atomics (see [`as_atomic_u32`]).
pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: layout-compatible per std docs; uniqueness from `&mut`.
    unsafe { &*(slice as *mut [u64] as *const [AtomicU64]) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn shared_mut_disjoint_writes() {
        let mut data = vec![0u32; 100];
        {
            let view = SharedMut::new(&mut data);
            std::thread::scope(|s| {
                let view = &view;
                s.spawn(move || {
                    for i in 0..50 {
                        unsafe { view.write(i, i as u32) };
                    }
                });
                s.spawn(move || {
                    for i in 50..100 {
                        unsafe { view.write(i, i as u32) };
                    }
                });
            });
        }
        assert!(data.iter().enumerate().all(|(i, v)| *v == i as u32));
    }

    #[test]
    fn shared_mut_read_back() {
        let mut data = vec![7u8; 4];
        let view = SharedMut::new(&mut data);
        unsafe {
            view.write(2, 9);
            assert_eq!(view.read(2), 9);
            assert_eq!(view.read(0), 7);
        }
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
    }

    #[test]
    fn atomic_u32_view_round_trips() {
        let mut data = vec![1u32, 2, 3];
        {
            let atomics = as_atomic_u32(&mut data);
            atomics[1].fetch_add(40, Ordering::Relaxed);
        }
        assert_eq!(data, vec![1, 42, 3]);
    }

    #[test]
    fn atomic_u64_view_cas() {
        let mut data = vec![5u64];
        {
            let atomics = as_atomic_u64(&mut data);
            assert!(atomics[0]
                .compare_exchange(5, 10, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok());
            assert!(atomics[0]
                .compare_exchange(5, 20, Ordering::Relaxed, Ordering::Relaxed)
                .is_err());
        }
        assert_eq!(data[0], 10);
    }

    #[test]
    fn atomic_views_concurrent_increments() {
        let mut data = vec![0u32; 8];
        {
            let atomics = as_atomic_u32(&mut data);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for i in 0..8 {
                            atomics[i].fetch_add(1000, Ordering::Relaxed);
                        }
                    });
                }
            });
        }
        assert!(data.iter().all(|v| *v == 4000));
    }
}
