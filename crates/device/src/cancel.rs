//! Cooperative request cancellation and deadlines.
//!
//! A shared device serves many concurrent requests; a client that hangs
//! up (or a request that outlives its latency budget) must release the
//! device promptly without poisoning its neighbors. GPUs cannot
//! preempt a running kernel, so cancellation here is *cooperative*, at
//! the same granularity a real stream supports: the launch loop checks
//! a [`CancelToken`] **between** kernel launches (and between the
//! stages of a batched submission), and the token's deadline also caps
//! the per-launch watchdog so a stalled kernel is abandoned at the next
//! block boundary.
//!
//! A fired token surfaces as a typed [`crate::DeviceError`]:
//! [`crate::DeviceError::Cancelled`] for an explicit [`CancelToken::cancel`],
//! [`crate::DeviceError::DeadlineExceeded`] for an expired deadline.
//! Both leave the device (pool, counters, memory tracker, arena) fully
//! usable — RAII reservations unwind with the failed run, exactly as
//! they do for a kernel panic.
//!
//! Tokens are cheap (`Arc` of an atomic) and clonable; a clone observes
//! the same flag, so a service front-end can hand one half to the
//! client and thread the other through the device.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (client hang-up, shed load).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

/// A cooperative cancellation handle threaded through the device launch
/// loop (see the module docs). The cancel *flag* is shared by every
/// clone; the *deadline* is per-handle, so a front-end can derive a
/// deadline-capped child ([`CancelToken::with_deadline_capped`]) for
/// one request while keeping the client's original handle able to
/// cancel it.
#[derive(Clone, Debug)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
    request_id: Option<u64>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self { cancelled: Arc::new(AtomicBool::new(false)), deadline: None, request_id: None }
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
            request_id: None,
        }
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A child token sharing this token's cancel flag whose deadline is
    /// the *earlier* of this token's and `deadline`. Cancelling either
    /// handle cancels both; the child can only be stricter about time.
    pub fn with_deadline_capped(&self, deadline: Instant) -> CancelToken {
        Self {
            cancelled: Arc::clone(&self.cancelled),
            deadline: Some(self.deadline.map_or(deadline, |d| d.min(deadline))),
            request_id: self.request_id,
        }
    }

    /// Tags this handle with a service-assigned request id. Like the
    /// deadline, the id is per-handle (clones keep the id they were
    /// built from); it rides the token through the device so telemetry
    /// can correlate spans and run stats back to the request.
    pub fn with_request_id(mut self, request_id: u64) -> Self {
        self.request_id = Some(request_id);
        self
    }

    /// The request id this handle was tagged with, if any.
    pub fn request_id(&self) -> Option<u64> {
        self.request_id
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called. Does not
    /// consider the deadline; see [`CancelToken::fired`].
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, if one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Why the token has fired, if it has. An explicit cancel is the
    /// more specific diagnosis when both conditions hold: the client
    /// already hung up, so the deadline no longer matters.
    pub fn fired(&self) -> Option<CancelCause> {
        if self.is_cancelled() {
            Some(CancelCause::Cancelled)
        } else if self.deadline_expired() {
            Some(CancelCause::DeadlineExceeded)
        } else {
            None
        }
    }

    /// Time remaining until the deadline (`None` without one,
    /// `Some(ZERO)` once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_has_not_fired() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(!token.deadline_expired());
        assert_eq!(token.fired(), None);
        assert_eq!(token.remaining(), None);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.fired(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn expired_deadline_fires() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.deadline_expired());
        assert_eq!(token.fired(), Some(CancelCause::DeadlineExceeded));
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_fire_yet() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(token.fired(), None);
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn explicit_cancel_wins_over_expired_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.fired(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn request_id_rides_clones_and_capped_children() {
        let token = CancelToken::new().with_request_id(42);
        assert_eq!(token.request_id(), Some(42));
        assert_eq!(token.clone().request_id(), Some(42));
        let capped = token.with_deadline_capped(Instant::now() + Duration::from_secs(1));
        assert_eq!(capped.request_id(), Some(42));
        assert_eq!(CancelToken::new().request_id(), None);
    }

    #[test]
    fn capped_child_shares_flag_and_takes_earlier_deadline() {
        let parent = CancelToken::new();
        let child = parent.with_deadline_capped(Instant::now() + Duration::from_secs(3600));
        assert!(child.deadline().is_some());
        assert!(parent.deadline().is_none(), "capping must not mutate the parent");
        // Cancel travels both directions — it's one shared flag.
        child.cancel();
        assert!(parent.is_cancelled());
        // The earlier deadline wins.
        let strict = CancelToken::with_deadline(Instant::now() + Duration::from_secs(1));
        let loose = strict.with_deadline_capped(Instant::now() + Duration::from_secs(3600));
        assert_eq!(loose.deadline(), strict.deadline());
    }
}
