//! A device buffer arena: size-bucketed free lists of scratch buffers.
//!
//! Index construction allocates the same scratch buffers every run —
//! Morton keys, sort ping-pong arrays, arrival flags, pending-parent
//! state. On a GPU those live in a memory pool reused across launches
//! (cudaMallocAsync pools, ArborX's scratch arena); allocating fresh
//! each run both thrashes the allocator and misstates the device's
//! steady-state footprint. [`BufferArena`] reproduces the pool: a
//! buffer checked out with [`BufferArena::take`] reserves its bytes
//! against the device [`MemoryTracker`] once, and on drop returns to a
//! free list keyed by `(element type, length)` — its reservation stays
//! alive while pooled, so arena-held bytes remain visible to the budget
//! and to `run_resilient`'s pre-flight estimate.
//!
//! Fault injection stays honest across reuse: recycling a pooled buffer
//! calls [`MemoryTracker::acknowledge_recycle`], which advances the
//! reservation ordinal and consults the fault plan without charging any
//! bytes. An injected OOM addressed to that ordinal fires on the reuse
//! (the pooled buffer is discarded, as a failed allocation would be);
//! only [`MemoryTracker::reservations_made`] — fresh reservations —
//! drops toward zero as the arena warms up.
//!
//! [`BufferArena::take_untracked`] checks out a buffer with no tracker
//! interaction at all. It exists for block-local working sets that a
//! real kernel would keep in shared memory (the radix sort's per-block
//! histogram table): they are not device-global allocations, so they
//! neither charge the budget nor occupy fault ordinals.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::memory::{DeviceError, MemoryReservation, MemoryTracker};

/// One buffer sitting in a free list, with the reservation (if tracked)
/// it still holds.
struct PooledBuf {
    buf: Box<dyn Any + Send>,
    reservation: Option<MemoryReservation>,
}

impl PooledBuf {
    fn reserved_bytes(&self) -> usize {
        self.reservation.as_ref().map_or(0, MemoryReservation::bytes)
    }
}

#[derive(Default)]
struct ArenaInner {
    /// Free lists keyed by `(element type, element count)`. Exact
    /// length classes, not power-of-two buckets: a pooled buffer's live
    /// reservation must equal its byte size, or budget enforcement and
    /// the OOM tests it backs would drift.
    pools: Mutex<HashMap<(TypeId, usize), Vec<PooledBuf>>>,
    /// Reservation-backed bytes currently sitting in free lists. These
    /// count against `MemoryTracker::in_use` but are reclaimable, so
    /// pre-flight estimates add them back to the available budget.
    held: AtomicUsize,
    fresh_takes: AtomicU64,
    recycled_takes: AtomicU64,
}

/// A size-bucketed pool of device scratch buffers charged against the
/// device memory budget (see the module docs). Cloning is cheap and
/// shares the pool, like the device it belongs to.
#[derive(Clone)]
pub struct BufferArena {
    inner: Arc<ArenaInner>,
    tracker: Arc<MemoryTracker>,
}

impl BufferArena {
    /// Creates an empty arena charging reservations to `tracker`.
    pub fn new(tracker: Arc<MemoryTracker>) -> Self {
        Self { inner: Arc::new(ArenaInner::default()), tracker }
    }

    /// Checks out a buffer of `n` default-initialized elements,
    /// reserving its bytes against the tracker (fresh checkout) or
    /// acknowledging the reuse of an already-reserved pooled buffer
    /// (recycle). Fails under the same conditions as
    /// [`MemoryTracker::reserve`]: budget exhaustion or an injected
    /// OOM — which fires on recycles too, discarding the pooled buffer
    /// exactly as a failed allocation would.
    pub fn take<T>(&self, n: usize) -> Result<ArenaBuf<T>, DeviceError>
    where
        T: Default + Clone + Send + 'static,
    {
        let key = (TypeId::of::<T>(), n);
        let pooled = self.inner.pools.lock().get_mut(&key).and_then(Vec::pop);
        if let Some(pooled) = pooled {
            let held = pooled.reserved_bytes();
            self.inner.held.fetch_sub(held, Ordering::Relaxed);
            // On failure `pooled` drops here and its reservation is
            // released: an injected OOM costs the arena the buffer.
            self.tracker.acknowledge_recycle(held)?;
            let mut buf = *pooled.buf.downcast::<Vec<T>>().expect("pool key pins the element type");
            buf.clear();
            buf.resize(n, T::default());
            self.inner.recycled_takes.fetch_add(1, Ordering::Relaxed);
            return Ok(ArenaBuf {
                buf,
                reservation: pooled.reservation,
                class: n,
                inner: Arc::clone(&self.inner),
            });
        }
        let reservation = self.tracker.reserve_array::<T>(n)?;
        self.inner.fresh_takes.fetch_add(1, Ordering::Relaxed);
        Ok(ArenaBuf {
            buf: vec![T::default(); n],
            reservation: Some(reservation),
            class: n,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Checks out a buffer of `n` default-initialized elements with no
    /// tracker interaction: no reservation, no budget charge, no fault
    /// ordinal. For block-local working sets a real kernel would keep
    /// in shared memory rather than global device memory.
    pub fn take_untracked<T>(&self, n: usize) -> ArenaBuf<T>
    where
        T: Default + Clone + Send + 'static,
    {
        let key = (TypeId::of::<T>(), n);
        let pooled = self.inner.pools.lock().get_mut(&key).and_then(Vec::pop);
        if let Some(pooled) = pooled {
            let held = pooled.reserved_bytes();
            self.inner.held.fetch_sub(held, Ordering::Relaxed);
            let mut buf = *pooled.buf.downcast::<Vec<T>>().expect("pool key pins the element type");
            buf.clear();
            buf.resize(n, T::default());
            self.inner.recycled_takes.fetch_add(1, Ordering::Relaxed);
            // An untracked checkout may recycle a tracked buffer; it
            // keeps (and later returns) the reservation it came with.
            return ArenaBuf {
                buf,
                reservation: pooled.reservation,
                class: n,
                inner: Arc::clone(&self.inner),
            };
        }
        self.inner.fresh_takes.fetch_add(1, Ordering::Relaxed);
        ArenaBuf {
            buf: vec![T::default(); n],
            reservation: None,
            class: n,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Reservation-backed bytes currently parked in free lists. Still
    /// counted in [`MemoryTracker::in_use`], but reclaimable on demand
    /// via [`BufferArena::trim`] — pre-flight footprint checks treat
    /// them as available.
    pub fn held_bytes(&self) -> usize {
        self.inner.held.load(Ordering::Relaxed)
    }

    /// Releases every pooled buffer (and its reservation), returning
    /// the bytes that were freed.
    pub fn trim(&self) -> usize {
        let drained: Vec<PooledBuf> = {
            let mut pools = self.inner.pools.lock();
            pools.drain().flat_map(|(_, bufs)| bufs).collect()
        };
        let bytes: usize = drained.iter().map(PooledBuf::reserved_bytes).sum();
        self.inner.held.fetch_sub(bytes, Ordering::Relaxed);
        bytes
    }

    /// Checkouts served by a fresh allocation.
    pub fn fresh_takes(&self) -> u64 {
        self.inner.fresh_takes.load(Ordering::Relaxed)
    }

    /// Checkouts served from a free list.
    pub fn recycled_takes(&self) -> u64 {
        self.inner.recycled_takes.load(Ordering::Relaxed)
    }

    /// One coherent sample of the arena's telemetry values.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            held_bytes: self.held_bytes(),
            fresh_takes: self.fresh_takes(),
            recycled_takes: self.recycled_takes(),
        }
    }
}

/// Point-in-time copy of the arena's gauge/counter values (see
/// [`BufferArena::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Reservation-backed bytes parked in free lists right now.
    pub held_bytes: usize,
    /// Checkouts served by a fresh allocation, since construction.
    pub fresh_takes: u64,
    /// Checkouts served from a free list, since construction.
    pub recycled_takes: u64,
}

impl std::fmt::Debug for BufferArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferArena")
            .field("held_bytes", &self.held_bytes())
            .field("fresh_takes", &self.fresh_takes())
            .field("recycled_takes", &self.recycled_takes())
            .finish()
    }
}

/// A buffer checked out of a [`BufferArena`]. Dereferences to its
/// `Vec<T>`; on drop it returns to the arena's free list (keeping its
/// reservation alive) unless its capacity no longer matches its size
/// class, in which case it is released for real.
pub struct ArenaBuf<T: Send + 'static> {
    buf: Vec<T>,
    reservation: Option<MemoryReservation>,
    /// The element count this buffer was checked out (and charged) as.
    class: usize,
    inner: Arc<ArenaInner>,
}

impl<T: Send + 'static> Deref for ArenaBuf<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: Send + 'static> DerefMut for ArenaBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: Send + 'static> Drop for ArenaBuf<T> {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // A caller that grew (or shrank) the allocation broke the
        // class's byte accounting: release it instead of pooling.
        if buf.capacity() != self.class {
            return;
        }
        let reservation = self.reservation.take();
        let pooled = PooledBuf { buf: Box::new(buf), reservation };
        self.inner.held.fetch_add(pooled.reserved_bytes(), Ordering::Relaxed);
        self.inner.pools.lock().entry((TypeId::of::<T>(), self.class)).or_default().push(pooled);
    }
}

impl<T: Send + std::fmt::Debug> std::fmt::Debug for ArenaBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.buf.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::Counters;

    fn arena(budget: Option<usize>) -> BufferArena {
        BufferArena::new(Arc::new(MemoryTracker::new(budget)))
    }

    #[test]
    fn take_reserves_and_drop_keeps_bytes_held() {
        let tracker = Arc::new(MemoryTracker::new(None));
        let arena = BufferArena::new(Arc::clone(&tracker));
        {
            let buf = arena.take::<u64>(100).unwrap();
            assert_eq!(buf.len(), 100);
            assert_eq!(tracker.in_use(), 800);
            assert_eq!(arena.held_bytes(), 0);
        }
        // Pooled, not released: the reservation stays alive.
        assert_eq!(tracker.in_use(), 800);
        assert_eq!(arena.held_bytes(), 800);
        assert_eq!(arena.fresh_takes(), 1);
    }

    #[test]
    fn second_take_recycles_without_a_fresh_reservation() {
        let tracker = Arc::new(MemoryTracker::new(None));
        let arena = BufferArena::new(Arc::clone(&tracker));
        {
            let mut buf = arena.take::<u32>(64).unwrap();
            buf[7] = 99;
        }
        let buf = arena.take::<u32>(64).unwrap();
        assert!(buf.iter().all(|&v| v == 0), "recycled buffers are re-defaulted");
        assert_eq!(arena.fresh_takes(), 1);
        assert_eq!(arena.recycled_takes(), 1);
        assert_eq!(tracker.reservations_made(), 1, "the recycle made no fresh reservation");
        assert_eq!(tracker.in_use(), 256);
        assert_eq!(arena.held_bytes(), 0);
    }

    #[test]
    fn distinct_sizes_and_types_use_distinct_classes() {
        let arena = arena(None);
        drop(arena.take::<u32>(8).unwrap());
        drop(arena.take::<u32>(9).unwrap());
        drop(arena.take::<u64>(8).unwrap());
        // Three classes, so three fresh takes even after the drops…
        assert_eq!(arena.fresh_takes(), 3);
        // …and re-taking each hits its own free list.
        let _a = arena.take::<u32>(8).unwrap();
        let _b = arena.take::<u32>(9).unwrap();
        let _c = arena.take::<u64>(8).unwrap();
        assert_eq!(arena.recycled_takes(), 3);
    }

    #[test]
    fn budget_counts_pooled_bytes() {
        let arena = arena(Some(1000));
        drop(arena.take::<u8>(800).unwrap());
        // The pooled 800 bytes still occupy the budget…
        assert!(arena.take::<u8>(300).is_err());
        // …until trimmed.
        assert_eq!(arena.trim(), 800);
        assert_eq!(arena.held_bytes(), 0);
        assert!(arena.take::<u8>(300).is_ok());
    }

    #[test]
    fn grown_buffer_is_released_not_pooled() {
        let tracker = Arc::new(MemoryTracker::new(None));
        let arena = BufferArena::new(Arc::clone(&tracker));
        {
            let mut buf = arena.take::<u64>(4).unwrap();
            buf.reserve(1024); // capacity no longer matches the class
        }
        assert_eq!(arena.held_bytes(), 0);
        assert_eq!(tracker.in_use(), 0, "grown buffer must release its reservation");
        let _again = arena.take::<u64>(4).unwrap();
        assert_eq!(arena.recycled_takes(), 0);
    }

    #[test]
    fn injected_oom_fires_on_recycle_and_discards_the_buffer() {
        let counters = Arc::new(Counters::default());
        let plan = Arc::new(FaultPlan::new(3).with_oom_at_reservation(1));
        let tracker =
            Arc::new(MemoryTracker::with_instrumentation(None, Arc::clone(&counters), Some(plan)));
        let arena = BufferArena::new(Arc::clone(&tracker));
        drop(arena.take::<u64>(32).unwrap()); // ordinal 0: fresh, then pooled
        let err = arena.take::<u64>(32).unwrap_err(); // ordinal 1: recycle, injected
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        assert_eq!(counters.snapshot().injected_oom, 1);
        // The pooled buffer was discarded with its reservation…
        assert_eq!(tracker.in_use(), 0);
        assert_eq!(arena.held_bytes(), 0);
        // …so the retry allocates fresh (ordinal 2: clean).
        assert!(arena.take::<u64>(32).is_ok());
        assert_eq!(arena.fresh_takes(), 2);
    }

    #[test]
    fn untracked_take_touches_neither_budget_nor_ordinals() {
        let counters = Arc::new(Counters::default());
        // An ordinal-0 OOM would fire on the very first reservation.
        let plan = Arc::new(FaultPlan::new(3).with_oom_at_reservation(0));
        let tracker =
            Arc::new(MemoryTracker::with_instrumentation(None, Arc::clone(&counters), Some(plan)));
        let arena = BufferArena::new(Arc::clone(&tracker));
        {
            let buf = arena.take_untracked::<u32>(1000);
            assert_eq!(buf.len(), 1000);
            assert_eq!(tracker.in_use(), 0);
        }
        // Recycle is equally invisible to the tracker.
        let _again = arena.take_untracked::<u32>(1000);
        assert_eq!(arena.recycled_takes(), 1);
        assert_eq!(tracker.reservations_made(), 0);
        assert_eq!(counters.snapshot().injected_oom, 0);
        assert_eq!(arena.held_bytes(), 0);
    }

    #[test]
    fn clones_share_the_pool() {
        let arena = arena(None);
        let clone = arena.clone();
        drop(arena.take::<u8>(16).unwrap());
        let _buf = clone.take::<u8>(16).unwrap();
        assert_eq!(clone.recycled_takes(), 1);
    }

    #[test]
    fn zero_length_take_works() {
        let arena = arena(Some(0));
        let buf = arena.take::<u64>(0).unwrap();
        assert!(buf.is_empty());
    }
}
