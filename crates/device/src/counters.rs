//! Device-wide work counters ("hardware performance counters").
//!
//! The paper's performance arguments are about *work*: how many distance
//! computations an algorithm performs, how much of the tree a traversal
//! touches, how many union-find operations run. On a machine with far
//! fewer cores than the paper's V100, wall time alone would misrepresent
//! the comparison, so every substrate increments these counters and the
//! benchmark harness reports both.
//!
//! Counters are `Relaxed` atomics: they are statistics, not
//! synchronization. Increments are cheap but not free; the hot BVH
//! traversal batches its increments per query rather than per node.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared mutable counter block. Lives inside a `Device` and is shared by
/// all its clones.
#[derive(Debug, Default)]
pub struct Counters {
    /// Number of kernel launches (including reductions).
    pub kernel_launches: AtomicU64,
    /// Point–point (and point–box-member) distance evaluations.
    pub distance_computations: AtomicU64,
    /// BVH nodes visited across all traversals.
    pub bvh_nodes_visited: AtomicU64,
    /// Wide (BVH8) nodes classified by the 8-lane traversal kernel
    /// (one increment covers all eight child tests of a node).
    pub wide_nodes_visited: AtomicU64,
    /// 8-wide lane batches spent scanning wide leaf runs.
    pub wide_leaf_lanes: AtomicU64,
    /// `Union` operations executed (successful or not).
    pub unions: AtomicU64,
    /// `Find` root lookups executed.
    pub finds: AtomicU64,
    /// Compare-and-swap operations on cluster labels (border-point claims).
    pub label_cas: AtomicU64,
    /// Neighbors reported by traversals (edges of the implicit graph).
    pub neighbors_found: AtomicU64,
    /// Points scanned inside dense boxes (FDBSCAN-DenseBox linear scans).
    pub dense_box_scans: AtomicU64,
    /// Memory reservations requested (successful or not).
    pub reservations: AtomicU64,
    /// Stages executed inside batched launch submissions
    /// (`Device::try_batch_named`). A batch counts once in
    /// `kernel_launches` regardless of how many stages it runs; this
    /// counter preserves the stage-level work accounting.
    pub batched_stages: AtomicU64,
    /// Kernel launches that returned an error (panic, timeout, or
    /// injected fault) through the fallible launch API.
    pub failed_launches: AtomicU64,
    /// Out-of-memory errors injected by a fault plan.
    pub injected_oom: AtomicU64,
    /// Kernel panics injected by a fault plan.
    pub injected_panics: AtomicU64,
    /// Worker stalls injected by a fault plan.
    pub injected_stalls: AtomicU64,
    /// Distributed-rank failures injected by a fault plan.
    pub injected_rank_faults: AtomicU64,
    /// Message-layer faults (drop/corrupt/delay) injected by a fault
    /// plan into the simulated distributed transport.
    pub injected_message_faults: AtomicU64,
    /// Permanent rank deaths injected by a fault plan at distributed
    /// phase boundaries.
    pub injected_rank_deaths: AtomicU64,
}

impl Counters {
    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.kernel_launches.store(0, Ordering::Relaxed);
        self.distance_computations.store(0, Ordering::Relaxed);
        self.bvh_nodes_visited.store(0, Ordering::Relaxed);
        self.wide_nodes_visited.store(0, Ordering::Relaxed);
        self.wide_leaf_lanes.store(0, Ordering::Relaxed);
        self.unions.store(0, Ordering::Relaxed);
        self.finds.store(0, Ordering::Relaxed);
        self.label_cas.store(0, Ordering::Relaxed);
        self.neighbors_found.store(0, Ordering::Relaxed);
        self.dense_box_scans.store(0, Ordering::Relaxed);
        self.reservations.store(0, Ordering::Relaxed);
        self.batched_stages.store(0, Ordering::Relaxed);
        self.failed_launches.store(0, Ordering::Relaxed);
        self.injected_oom.store(0, Ordering::Relaxed);
        self.injected_panics.store(0, Ordering::Relaxed);
        self.injected_stalls.store(0, Ordering::Relaxed);
        self.injected_rank_faults.store(0, Ordering::Relaxed);
        self.injected_message_faults.store(0, Ordering::Relaxed);
        self.injected_rank_deaths.store(0, Ordering::Relaxed);
    }

    /// Adds `n` to the distance-computation counter.
    #[inline]
    pub fn add_distances(&self, n: u64) {
        if n > 0 {
            self.distance_computations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` to the nodes-visited counter.
    #[inline]
    pub fn add_nodes_visited(&self, n: u64) {
        if n > 0 {
            self.bvh_nodes_visited.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` to the wide-node counter.
    #[inline]
    pub fn add_wide_nodes_visited(&self, n: u64) {
        if n > 0 {
            self.wide_nodes_visited.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` to the wide leaf-lane-batch counter.
    #[inline]
    pub fn add_wide_leaf_lanes(&self, n: u64) {
        if n > 0 {
            self.wide_leaf_lanes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Takes a plain-value snapshot of all counters.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            distance_computations: self.distance_computations.load(Ordering::Relaxed),
            bvh_nodes_visited: self.bvh_nodes_visited.load(Ordering::Relaxed),
            wide_nodes_visited: self.wide_nodes_visited.load(Ordering::Relaxed),
            wide_leaf_lanes: self.wide_leaf_lanes.load(Ordering::Relaxed),
            unions: self.unions.load(Ordering::Relaxed),
            finds: self.finds.load(Ordering::Relaxed),
            label_cas: self.label_cas.load(Ordering::Relaxed),
            neighbors_found: self.neighbors_found.load(Ordering::Relaxed),
            dense_box_scans: self.dense_box_scans.load(Ordering::Relaxed),
            reservations: self.reservations.load(Ordering::Relaxed),
            batched_stages: self.batched_stages.load(Ordering::Relaxed),
            failed_launches: self.failed_launches.load(Ordering::Relaxed),
            injected_oom: self.injected_oom.load(Ordering::Relaxed),
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            injected_rank_faults: self.injected_rank_faults.load(Ordering::Relaxed),
            injected_message_faults: self.injected_message_faults.load(Ordering::Relaxed),
            injected_rank_deaths: self.injected_rank_deaths.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`Counters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Number of kernel launches (including reductions).
    pub kernel_launches: u64,
    /// Point–point (and point–box-member) distance evaluations.
    pub distance_computations: u64,
    /// BVH nodes visited across all traversals.
    pub bvh_nodes_visited: u64,
    /// Wide (BVH8) nodes classified by the 8-lane traversal kernel.
    pub wide_nodes_visited: u64,
    /// 8-wide lane batches spent scanning wide leaf runs.
    pub wide_leaf_lanes: u64,
    /// `Union` operations executed (successful or not).
    pub unions: u64,
    /// `Find` root lookups executed.
    pub finds: u64,
    /// Compare-and-swap operations on cluster labels.
    pub label_cas: u64,
    /// Neighbors reported by traversals.
    pub neighbors_found: u64,
    /// Points scanned inside dense boxes.
    pub dense_box_scans: u64,
    /// Memory reservations requested (successful or not).
    pub reservations: u64,
    /// Stages executed inside batched launch submissions.
    pub batched_stages: u64,
    /// Kernel launches that returned an error through the fallible API.
    pub failed_launches: u64,
    /// Out-of-memory errors injected by a fault plan.
    pub injected_oom: u64,
    /// Kernel panics injected by a fault plan.
    pub injected_panics: u64,
    /// Worker stalls injected by a fault plan.
    pub injected_stalls: u64,
    /// Distributed-rank failures injected by a fault plan.
    pub injected_rank_faults: u64,
    /// Message-layer faults injected by a fault plan.
    pub injected_message_faults: u64,
    /// Permanent rank deaths injected by a fault plan.
    pub injected_rank_deaths: u64,
}

impl CountersSnapshot {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    /// Useful for measuring one phase between two snapshots.
    pub fn since(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
            distance_computations: self
                .distance_computations
                .saturating_sub(earlier.distance_computations),
            bvh_nodes_visited: self.bvh_nodes_visited.saturating_sub(earlier.bvh_nodes_visited),
            wide_nodes_visited: self.wide_nodes_visited.saturating_sub(earlier.wide_nodes_visited),
            wide_leaf_lanes: self.wide_leaf_lanes.saturating_sub(earlier.wide_leaf_lanes),
            unions: self.unions.saturating_sub(earlier.unions),
            finds: self.finds.saturating_sub(earlier.finds),
            label_cas: self.label_cas.saturating_sub(earlier.label_cas),
            neighbors_found: self.neighbors_found.saturating_sub(earlier.neighbors_found),
            dense_box_scans: self.dense_box_scans.saturating_sub(earlier.dense_box_scans),
            reservations: self.reservations.saturating_sub(earlier.reservations),
            batched_stages: self.batched_stages.saturating_sub(earlier.batched_stages),
            failed_launches: self.failed_launches.saturating_sub(earlier.failed_launches),
            injected_oom: self.injected_oom.saturating_sub(earlier.injected_oom),
            injected_panics: self.injected_panics.saturating_sub(earlier.injected_panics),
            injected_stalls: self.injected_stalls.saturating_sub(earlier.injected_stalls),
            injected_rank_faults: self
                .injected_rank_faults
                .saturating_sub(earlier.injected_rank_faults),
            injected_message_faults: self
                .injected_message_faults
                .saturating_sub(earlier.injected_message_faults),
            injected_rank_deaths: self
                .injected_rank_deaths
                .saturating_sub(earlier.injected_rank_deaths),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let counters = Counters::default();
        counters.add_distances(5);
        counters.add_nodes_visited(3);
        counters.unions.fetch_add(2, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(snap.distance_computations, 5);
        assert_eq!(snap.bvh_nodes_visited, 3);
        assert_eq!(snap.unions, 2);
        assert_eq!(snap.kernel_launches, 0);
    }

    #[test]
    fn add_zero_is_noop() {
        let counters = Counters::default();
        counters.add_distances(0);
        counters.add_nodes_visited(0);
        assert_eq!(counters.snapshot(), CountersSnapshot::default());
    }

    #[test]
    fn reset_zeroes_everything() {
        let counters = Counters::default();
        counters.add_distances(10);
        counters.label_cas.fetch_add(7, Ordering::Relaxed);
        counters.reset();
        assert_eq!(counters.snapshot(), CountersSnapshot::default());
    }

    #[test]
    fn since_computes_phase_delta() {
        let counters = Counters::default();
        counters.add_distances(10);
        let first = counters.snapshot();
        counters.add_distances(25);
        counters.finds.fetch_add(4, Ordering::Relaxed);
        let second = counters.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.distance_computations, 25);
        assert_eq!(delta.finds, 4);
    }
}
