//! Persistent worker pool with batched (kernel-style) work distribution.
//!
//! The pool mimics a GPU's execution model rather than a task scheduler:
//! a *launch* hands every worker the same job, workers pull fixed-size
//! blocks of the index space from a shared cursor until it is exhausted,
//! and the launching thread both participates and blocks until the job is
//! complete. There is no nesting and no stealing between jobs — each
//! launch is a grid, each block a thread block.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

/// Why a fallible launch failed. Mapped to `DeviceError` by `Device`;
/// kept separate so the pool stays ignorant of launch ordinals.
#[derive(Debug)]
pub(crate) enum LaunchFailure {
    /// At least one kernel invocation panicked; `payload` is the first
    /// panic payload observed (stringified).
    Panicked {
        /// First panic payload, stringified.
        payload: String,
    },
    /// The launch deadline passed; remaining blocks were cancelled
    /// cooperatively at a block boundary.
    TimedOut {
        /// Time since launch start when the timeout was reported.
        elapsed: Duration,
    },
}

/// Per-participant execution profile of one *measured* launch (tracing
/// enabled). Index `i` of the vectors is one pool participant; the
/// launching thread is included, and so are participants that pulled no
/// blocks — idle threads count toward load imbalance, exactly as idle
/// SMs count against GPU occupancy.
#[derive(Clone, Debug)]
pub struct LaunchProfile {
    /// Time each participant spent executing kernel blocks.
    pub busy: Vec<Duration>,
    /// Blocks each participant pulled from the shared cursor.
    pub blocks_pulled: Vec<u64>,
}

impl LaunchProfile {
    /// Number of participants (workers + the launching thread).
    pub fn participants(&self) -> usize {
        self.busy.len()
    }

    /// Total blocks executed.
    pub fn blocks(&self) -> u64 {
        self.blocks_pulled.iter().sum()
    }

    /// Grid-stride passes: the most blocks any one participant pulled.
    pub fn passes(&self) -> u64 {
        self.blocks_pulled.iter().copied().max().unwrap_or(0)
    }

    /// Longest per-participant busy time.
    pub fn max_busy(&self) -> Duration {
        self.busy.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Mean per-participant busy time (idle participants included).
    pub fn mean_busy(&self) -> Duration {
        if self.busy.is_empty() {
            return Duration::ZERO;
        }
        self.busy.iter().sum::<Duration>() / self.busy.len() as u32
    }

    /// Load imbalance: `max_busy / mean_busy`, ≥ 1.0. A perfectly
    /// balanced launch scores 1.0; `participants()` means one thread did
    /// all the work. 1.0 when nothing was measured.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_busy().as_secs_f64();
        if mean <= 0.0 {
            return 1.0;
        }
        (self.max_busy().as_secs_f64() / mean).max(1.0)
    }
}

/// Stringifies a panic payload: `&str` and `String` payloads (the
/// overwhelmingly common cases) are preserved verbatim; anything else is
/// reported by type only.
fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Type-erased kernel body operating on a block (contiguous index range).
///
/// The fat pointer is only dereferenced while the owning
/// [`WorkerPool::try_parallel_for_blocks`] frame is alive (see the safety
/// note there), so storing a raw pointer — which may dangle after
/// completion — is sound.
struct Job {
    kernel: *const (dyn Fn(Range<usize>) + Sync),
    n: usize,
    block: usize,
    /// Blocks claimed per cursor `fetch_add`. Claimed runs are executed
    /// as individual `block`-sized sub-blocks (kernels still see ranges
    /// aligned to `block`, which fault injection relies on); claiming
    /// several per pull divides the atomic traffic on the shared cursor
    /// by `chunk`.
    chunk: usize,
    /// Cooperative watchdog deadline: checked before each block pull.
    /// A kernel that blocks forever inside a single block defeats it —
    /// same contract as a real GPU watchdog, which can only reset
    /// between scheduled work units.
    deadline: Option<Instant>,
    cursor: AtomicUsize,
    pending: AtomicUsize,
    panicked: AtomicBool,
    timed_out: AtomicBool,
    /// First panic payload observed (workers race; later ones are
    /// dropped).
    payload: Mutex<Option<String>>,
    /// Whether participants measure per-block busy time (tracing).
    measure: bool,
    /// Per-participant (busy, blocks pulled), pushed once per participant
    /// before its `pending` decrement. Empty unless `measure`.
    stats: Mutex<Vec<(Duration, u64)>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw kernel pointer targets a `Sync` closure, and `Job` is
// only shared between threads while the closure is alive.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Pulls blocks until the index space is exhausted, then signals.
    fn run(&self) {
        // SAFETY: `try_parallel_for_blocks` does not return until
        // `pending` hits zero, which happens strictly after the last
        // dereference.
        let kernel = unsafe { &*self.kernel };
        let mut busy = Duration::ZERO;
        let mut pulled = 0u64;
        'claim: loop {
            // Deadline check precedes the claim *and* the exhaustion
            // test, so a participant returning late from a long block
            // still reports the timeout even after the cursor drained.
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.timed_out.store(true, Ordering::Relaxed);
                    // Cancel remaining blocks; in-flight blocks on
                    // other workers finish their current block first.
                    self.cursor.store(self.n, Ordering::Relaxed);
                    break;
                }
            }
            // One fetch_add claims a run of `chunk` blocks; the run is
            // then executed as `block`-sized sub-blocks in ascending
            // order, so kernels observe the same aligned ranges as with
            // per-block claiming — only the cursor traffic changes.
            let start = self.cursor.fetch_add(self.chunk * self.block, Ordering::Relaxed);
            if start >= self.n {
                break;
            }
            let claim_end = (start + self.chunk * self.block).min(self.n);
            let mut sub = start;
            while sub < claim_end {
                // Between sub-blocks of a multi-block claim the watchdog
                // still fires promptly (the first sub-block was covered
                // by the loop-top check).
                if sub > start {
                    if let Some(deadline) = self.deadline {
                        if Instant::now() >= deadline {
                            self.timed_out.store(true, Ordering::Relaxed);
                            self.cursor.store(self.n, Ordering::Relaxed);
                            break 'claim;
                        }
                    }
                }
                let end = (sub + self.block).min(claim_end);
                // Clock reads are gated on `measure`: an untraced launch
                // pays zero timing overhead per block.
                let block_start = if self.measure { Some(Instant::now()) } else { None };
                let result = catch_unwind(AssertUnwindSafe(|| kernel(sub..end)));
                if let Some(block_start) = block_start {
                    busy += block_start.elapsed();
                    pulled += 1;
                }
                if let Err(panic) = result {
                    let mut slot = self.payload.lock();
                    if slot.is_none() {
                        *slot = Some(payload_to_string(panic.as_ref()));
                    }
                    drop(slot);
                    self.panicked.store(true, Ordering::Relaxed);
                    // Drain the rest of the index space so the launch
                    // still terminates promptly; remaining indices are
                    // skipped, the launcher will surface the failure.
                    self.cursor.store(self.n, Ordering::Relaxed);
                    break 'claim;
                }
                sub = end;
            }
        }
        if self.measure {
            // Push before the decrement below so the launcher (which waits
            // for `pending == 0`) observes every participant's entry.
            self.stats.lock().push((busy, pulled));
        }
        // AcqRel: the last participant's decrement releases its writes to
        // the launcher, which acquires them in `wait`.
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock();
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.done_cv.wait(&mut done);
        }
    }
}

enum Message {
    Work(Arc<Job>),
    Shutdown,
}

/// A persistent pool of worker threads executing batched launches.
pub struct WorkerPool {
    sender: Sender<Message>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Launches currently executing (occupancy gauge for telemetry).
    active: AtomicUsize,
    /// `FDBSCAN_POOL_CHUNK` override for the per-pull claim size, read
    /// once at pool construction. `None` = auto-tune per launch.
    chunk_override: Option<usize>,
}

/// Upper bound on the auto-tuned claim size: large enough to amortize
/// the cursor `fetch_add`, small enough that a straggler's tail claim
/// cannot dominate a launch.
const MAX_AUTO_CHUNK: usize = 16;

/// Blocks claimed per cursor pull for a launch of `total_blocks` blocks
/// over `participants` pullers: about 8 pulls per participant, so claim
/// overheads amortize while the final grid-stride pass still balances.
/// Small launches degrade to per-block claiming (chunk 1).
fn auto_chunk(total_blocks: usize, participants: usize) -> usize {
    (total_blocks / (participants.max(1) * 8)).clamp(1, MAX_AUTO_CHUNK)
}

/// Decrements the pool's active-launch count on every exit path of a
/// launch, including panics unwinding out of it.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl WorkerPool {
    /// Spawns `workers` threads. `workers == 0` is allowed: all launches
    /// then execute entirely on the calling thread.
    pub fn new(workers: usize) -> Self {
        let (sender, receiver): (Sender<Message>, Receiver<Message>) = unbounded();
        let handles = (0..workers)
            .map(|idx| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("fdbscan-worker-{idx}"))
                    .spawn(move || {
                        while let Ok(message) = receiver.recv() {
                            match message {
                                Message::Work(job) => job.run(),
                                Message::Shutdown => break,
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        let chunk_override = std::env::var("FDBSCAN_POOL_CHUNK")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0);
        Self { sender, handles, active: AtomicUsize::new(0), chunk_override }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Launches executing right now (0 on an idle pool). Each launch
    /// occupies every participant, so this counts concurrent *streams*,
    /// not busy threads.
    pub fn active_launches(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Fallible block launch: executes `kernel` once per block of `block`
    /// consecutive indices covering `0..n`, blocking the calling thread
    /// (which participates) until the index space is exhausted, a kernel
    /// panics, or `deadline` passes. The pool and its workers remain
    /// usable after a failure — panics are contained per block and the
    /// cursor drain guarantees prompt termination.
    ///
    /// With `measure` set, every participant times its kernel blocks and
    /// a successful launch returns a [`LaunchProfile`] (the tracing path);
    /// otherwise no clocks are read and `Ok(None)` is returned.
    pub(crate) fn try_parallel_for_blocks(
        &self,
        n: usize,
        block: usize,
        deadline: Option<Instant>,
        measure: bool,
        kernel: &(dyn Fn(Range<usize>) + Sync),
    ) -> Result<Option<LaunchProfile>, LaunchFailure> {
        if n == 0 {
            return Ok(None);
        }
        assert!(block > 0, "block size must be nonzero");
        self.active.fetch_add(1, Ordering::Relaxed);
        let _active = ActiveGuard(&self.active);
        let started = Instant::now();
        // SAFETY (lifetime erasure): `job.kernel` must not be dereferenced
        // after this function returns. Workers dereference it only inside
        // `Job::run`, which decrements `pending` after its last use; this
        // function returns only after `pending == 0` (via `wait`), so every
        // dereference happens-before the return.
        let erased: *const (dyn Fn(Range<usize>) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(Range<usize>) + Sync + '_),
                *const (dyn Fn(Range<usize>) + Sync + 'static),
            >(kernel as *const _)
        };
        let participants = self.handles.len() + 1;
        let chunk =
            self.chunk_override.unwrap_or_else(|| auto_chunk(n.div_ceil(block), participants));
        let job = Arc::new(Job {
            kernel: erased,
            n,
            block,
            chunk,
            deadline,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(participants),
            panicked: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            payload: Mutex::new(None),
            measure,
            stats: Mutex::new(Vec::with_capacity(if measure { participants } else { 0 })),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        for _ in 0..self.handles.len() {
            self.sender.send(Message::Work(Arc::clone(&job))).expect("worker pool channel closed");
        }
        job.run(); // the launching thread participates
        job.wait();
        // A panic is the more specific diagnosis when both fired.
        if job.panicked.load(Ordering::Relaxed) {
            let payload =
                job.payload.lock().take().unwrap_or_else(|| "unknown panic payload".to_string());
            return Err(LaunchFailure::Panicked { payload });
        }
        if job.timed_out.load(Ordering::Relaxed) {
            return Err(LaunchFailure::TimedOut { elapsed: started.elapsed() });
        }
        if !measure {
            return Ok(None);
        }
        let stats = std::mem::take(&mut *job.stats.lock());
        let (busy, blocks_pulled) = stats.into_iter().unzip();
        Ok(Some(LaunchProfile { busy, blocks_pulled }))
    }

    /// In-order block execution on the calling thread — the
    /// [`crate::Backend::Sequential`] engine. Blocks run in ascending
    /// index order with no `Job` machinery (no channel send, no condvar,
    /// no shared cursor), so counters, reduce combine order, and fault
    /// interleavings are fully deterministic: this path defines the
    /// oracle behaviour the threaded engine is differentially tested
    /// against. Failure semantics match
    /// [`Self::try_parallel_for_blocks`]: panics are contained per
    /// block, the deadline is checked before each block, and the pool's
    /// active-launch gauge covers the launch on every exit path.
    pub(crate) fn try_sequential_for_blocks(
        &self,
        n: usize,
        block: usize,
        deadline: Option<Instant>,
        measure: bool,
        kernel: &(dyn Fn(Range<usize>) + Sync),
    ) -> Result<Option<LaunchProfile>, LaunchFailure> {
        if n == 0 {
            return Ok(None);
        }
        assert!(block > 0, "block size must be nonzero");
        self.active.fetch_add(1, Ordering::Relaxed);
        let _active = ActiveGuard(&self.active);
        let started = Instant::now();
        let mut busy = Duration::ZERO;
        let mut pulled = 0u64;
        let mut start = 0usize;
        while start < n {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(LaunchFailure::TimedOut { elapsed: started.elapsed() });
                }
            }
            let end = (start + block).min(n);
            let block_start = if measure { Some(Instant::now()) } else { None };
            let result = catch_unwind(AssertUnwindSafe(|| kernel(start..end)));
            if let Some(block_start) = block_start {
                busy += block_start.elapsed();
                pulled += 1;
            }
            if let Err(panic) = result {
                return Err(LaunchFailure::Panicked { payload: payload_to_string(panic.as_ref()) });
            }
            start = end;
        }
        if !measure {
            return Ok(None);
        }
        Ok(Some(LaunchProfile { busy: vec![busy], blocks_pulled: vec![pulled] }))
    }

    /// Executes `kernel` once per block of `block` consecutive indices
    /// covering `0..n`. Blocks the calling thread (which participates)
    /// until the whole index space has been executed. Panics if any kernel
    /// invocation panicked; the panic message names the kernel via
    /// `label`.
    pub fn parallel_for_blocks(
        &self,
        label: &str,
        n: usize,
        block: usize,
        kernel: &(dyn Fn(Range<usize>) + Sync),
    ) {
        match self.try_parallel_for_blocks(n, block, None, false, kernel) {
            Ok(_) => {}
            Err(LaunchFailure::Panicked { payload }) => {
                panic!("kernel '{label}' panicked during launch: {payload}")
            }
            // Unreachable with `deadline: None`, but keep a defined
            // behavior rather than an unreachable!().
            Err(LaunchFailure::TimedOut { elapsed }) => {
                panic!("kernel '{label}' launch timed out after {elapsed:?}")
            }
        }
    }

    /// Per-index launch (a thin wrapper over [`Self::parallel_for_blocks`]).
    pub fn parallel_for(
        &self,
        label: &str,
        n: usize,
        block: usize,
        kernel: &(dyn Fn(usize) + Sync),
    ) {
        self.parallel_for_blocks(label, n, block, &|range: Range<usize>| {
            for i in range {
                kernel(i);
            }
        });
    }

    /// Fallible block-parallel reduction (see [`Self::parallel_reduce`]
    /// for the combine contract). On failure the partial accumulator is
    /// discarded.
    pub(crate) fn try_parallel_reduce<T, M, C>(
        &self,
        n: usize,
        block: usize,
        deadline: Option<Instant>,
        identity: T,
        map: &M,
        combine: &C,
    ) -> Result<T, LaunchFailure>
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        if n == 0 {
            return Ok(identity);
        }
        let accumulator: Mutex<T> = Mutex::new(identity.clone());
        self.try_parallel_for_blocks(n, block, deadline, false, &|range: Range<usize>| {
            let mut local = identity.clone();
            for i in range {
                local = combine(local, map(i));
            }
            let mut acc = accumulator.lock();
            let current = acc.clone();
            *acc = combine(current, local);
        })?;
        Ok(accumulator.into_inner())
    }

    /// Block-parallel reduction. `combine` must be associative and
    /// commutative; block partials are merged in completion order, one
    /// lock acquisition per block. Panics (naming `label`) on kernel
    /// panic.
    pub fn parallel_reduce<T, M, C>(
        &self,
        label: &str,
        n: usize,
        block: usize,
        identity: T,
        map: &M,
        combine: &C,
    ) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        match self.try_parallel_reduce(n, block, None, identity, map, combine) {
            Ok(value) => value,
            Err(LaunchFailure::Panicked { payload }) => {
                panic!("kernel '{label}' panicked during launch: {payload}")
            }
            Err(LaunchFailure::TimedOut { elapsed }) => {
                panic!("kernel '{label}' launch timed out after {elapsed:?}")
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for _ in &self.handles {
            let _ = self.sender.send(Message::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_with_zero_workers_runs_on_caller() {
        let pool = WorkerPool::new(0);
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(Vec::new());
        pool.parallel_for("test", 100, 8, &|_| {
            ran_on.lock().push(std::thread::current().id());
        });
        let ids = ran_on.into_inner();
        assert_eq!(ids.len(), 100);
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn pool_distributes_to_workers() {
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(std::collections::HashSet::new());
        // Slow-ish kernel so workers actually pick up blocks.
        pool.parallel_for("test", 4096, 16, &|_| {
            std::thread::yield_now();
            seen.lock().insert(std::thread::current().id());
        });
        // At least the caller ran; with 4 workers usually more, but on a
        // single-core machine the caller may legitimately drain everything,
        // so only assert completion and non-emptiness.
        assert!(!seen.into_inner().is_empty());
    }

    #[test]
    fn back_to_back_launches() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let count = AtomicUsize::new(0);
            pool.parallel_for("test", round * 17 + 1, 4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), round * 17 + 1);
        }
    }

    #[test]
    fn block_larger_than_n() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        pool.parallel_for("test", 3, 1000, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn blocks_partition_index_space() {
        let pool = WorkerPool::new(2);
        let covered = Mutex::new(vec![false; 1000]);
        pool.parallel_for_blocks("test", 1000, 37, &|range| {
            assert!(range.len() <= 37);
            let mut covered = covered.lock();
            for i in range {
                assert!(!covered[i], "index {i} executed twice");
                covered[i] = true;
            }
        });
        assert!(covered.into_inner().into_iter().all(|c| c));
    }

    #[test]
    fn reduce_sums_u128() {
        let pool = WorkerPool::new(3);
        let got = pool.parallel_reduce("sum", 10_000, 64, 0u128, &|i| i as u128, &|a, b| a + b);
        assert_eq!(got, 9999u128 * 10_000 / 2);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(3);
        pool.parallel_for("test", 10, 1, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn try_launch_captures_first_panic_payload() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_parallel_for_blocks(100, 4, None, false, &|range| {
                if range.contains(&42) {
                    panic!("boom at {}", range.start);
                }
            })
            .unwrap_err();
        match err {
            LaunchFailure::Panicked { payload } => assert!(payload.starts_with("boom at")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The pool must stay usable after the failed launch.
        let count = AtomicUsize::new(0);
        pool.parallel_for("test", 50, 4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn expired_deadline_cancels_remaining_blocks() {
        let pool = WorkerPool::new(0);
        let executed = AtomicUsize::new(0);
        let err = pool
            .try_parallel_for_blocks(
                1000,
                1,
                // Already expired: the very first deadline check fires.
                Some(Instant::now() - Duration::from_millis(1)),
                false,
                &|_| {
                    executed.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap_err();
        assert!(matches!(err, LaunchFailure::TimedOut { .. }));
        assert_eq!(executed.load(Ordering::Relaxed), 0, "no block may run past cancel");
        // And the pool still works.
        pool.parallel_for("test", 10, 1, &|_| {});
    }

    #[test]
    fn slow_kernel_trips_mid_launch_deadline() {
        let pool = WorkerPool::new(0);
        let executed = AtomicUsize::new(0);
        let err = pool
            .try_parallel_for_blocks(
                100,
                1,
                Some(Instant::now() + Duration::from_millis(20)),
                false,
                &|_| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                },
            )
            .unwrap_err();
        match err {
            LaunchFailure::TimedOut { elapsed } => {
                assert!(elapsed >= Duration::from_millis(20));
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran > 0 && ran < 100, "should cancel partway, ran {ran}");
    }

    #[test]
    fn try_reduce_propagates_failure() {
        let pool = WorkerPool::new(1);
        let err = pool
            .try_parallel_reduce(
                100,
                4,
                None,
                0u64,
                &|i| {
                    if i == 7 {
                        panic!("reduce kernel fault");
                    }
                    i as u64
                },
                &|a, b| a + b,
            )
            .unwrap_err();
        assert!(matches!(err, LaunchFailure::Panicked { .. }));
        // Reduce still works afterwards.
        let got = pool.parallel_reduce("sum", 100, 4, 0u64, &|i| i as u64, &|a, b| a + b);
        assert_eq!(got, 99 * 100 / 2);
    }

    #[test]
    #[should_panic(expected = "kernel 'faulty' panicked during launch: original message")]
    fn infallible_launch_reraises_with_label_and_payload() {
        let pool = WorkerPool::new(0);
        pool.parallel_for("faulty", 10, 1, &|i| {
            if i == 3 {
                panic!("original message");
            }
        });
    }

    #[test]
    fn measured_launch_returns_profile() {
        let pool = WorkerPool::new(2);
        let profile = pool
            .try_parallel_for_blocks(1000, 8, None, true, &|_range| {
                std::thread::yield_now();
            })
            .unwrap()
            .expect("measured launch must profile");
        assert_eq!(profile.participants(), 3, "2 workers + launcher");
        assert_eq!(profile.blocks(), 125);
        assert!(profile.passes() >= 1 && profile.passes() <= 125);
        assert!(profile.imbalance() >= 1.0);
        assert!(profile.max_busy() >= profile.mean_busy());
    }

    #[test]
    fn unmeasured_launch_returns_no_profile() {
        let pool = WorkerPool::new(1);
        let profile = pool.try_parallel_for_blocks(100, 8, None, false, &|_| {}).unwrap();
        assert!(profile.is_none());
    }

    #[test]
    fn sequential_path_runs_blocks_in_ascending_order() {
        let pool = WorkerPool::new(0);
        let order = Mutex::new(Vec::new());
        pool.try_sequential_for_blocks(100, 7, None, false, &|range| {
            order.lock().push(range);
        })
        .unwrap();
        let ranges = order.into_inner();
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 100);
        assert!(ranges.windows(2).all(|w| w[0].end == w[1].start), "blocks must be in order");
    }

    #[test]
    fn sequential_path_contains_panics_and_stops_at_fault() {
        let pool = WorkerPool::new(0);
        let executed = AtomicUsize::new(0);
        let err = pool
            .try_sequential_for_blocks(100, 10, None, false, &|range| {
                executed.fetch_add(1, Ordering::Relaxed);
                if range.contains(&35) {
                    panic!("seq boom");
                }
            })
            .unwrap_err();
        match err {
            LaunchFailure::Panicked { payload } => assert_eq!(payload, "seq boom"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // In-order execution: exactly blocks 0..=3 ran, nothing after
        // the faulting block.
        assert_eq!(executed.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn sequential_path_honors_deadline() {
        let pool = WorkerPool::new(0);
        let executed = AtomicUsize::new(0);
        let err = pool
            .try_sequential_for_blocks(
                1000,
                1,
                Some(Instant::now() - Duration::from_millis(1)),
                false,
                &|_| {
                    executed.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap_err();
        assert!(matches!(err, LaunchFailure::TimedOut { .. }));
        assert_eq!(executed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sequential_path_profiles_one_participant() {
        let pool = WorkerPool::new(0);
        let profile = pool
            .try_sequential_for_blocks(100, 8, None, true, &|_| {})
            .unwrap()
            .expect("measured launch must profile");
        assert_eq!(profile.participants(), 1);
        assert_eq!(profile.blocks(), 13);
        assert_eq!(profile.passes(), 13);
    }

    #[test]
    fn auto_chunk_scales_with_launch_size() {
        // Small launches keep per-block claiming so every participant
        // gets work; big launches claim runs, capped for tail balance.
        assert_eq!(auto_chunk(1, 4), 1);
        assert_eq!(auto_chunk(25, 3), 1);
        assert_eq!(auto_chunk(125, 3), 5);
        assert_eq!(auto_chunk(10_000, 3), MAX_AUTO_CHUNK);
        assert_eq!(auto_chunk(100, 0), MAX_AUTO_CHUNK.min(100 / 8));
    }

    #[test]
    fn chunked_claims_still_partition_index_space() {
        // Large enough that auto_chunk claims multi-block runs: the
        // sub-blocks must still cover every index exactly once and never
        // exceed the block size.
        let pool = WorkerPool::new(2);
        let covered = Mutex::new(vec![false; 9973]);
        pool.parallel_for_blocks("test", 9973, 8, &|range| {
            assert!(range.len() <= 8);
            let mut covered = covered.lock();
            for i in range {
                assert!(!covered[i], "index {i} executed twice");
                covered[i] = true;
            }
        });
        assert!(covered.into_inner().into_iter().all(|c| c));
    }

    #[test]
    fn chunked_single_participant_replays_in_order() {
        // With no workers the launcher claims every chunk itself; the
        // sub-block schedule must remain the ascending sequential order
        // (the in-order replay property fault recovery depends on).
        let pool = WorkerPool::new(0);
        let order = Mutex::new(Vec::new());
        pool.parallel_for_blocks("test", 4096, 8, &|range| {
            order.lock().push(range);
        });
        let ranges = order.into_inner();
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 4096);
        assert!(ranges.windows(2).all(|w| w[0].end == w[1].start), "sub-blocks must be in order");
    }

    #[test]
    fn chunked_claims_keep_block_alignment() {
        // Fault injection recovers the block index as
        // `range.start / block_size`; chunked claiming must keep every
        // sub-block start aligned for that to stay true.
        let pool = WorkerPool::new(2);
        let starts = Mutex::new(Vec::new());
        pool.parallel_for_blocks("test", 5000, 8, &|range| {
            starts.lock().push(range.start);
        });
        assert!(starts.into_inner().into_iter().all(|s| s % 8 == 0));
    }

    #[test]
    fn imbalance_of_idle_profile_is_one() {
        let profile = LaunchProfile { busy: vec![Duration::ZERO; 4], blocks_pulled: vec![0; 4] };
        assert_eq!(profile.imbalance(), 1.0);
        assert_eq!(profile.passes(), 0);
    }
}
