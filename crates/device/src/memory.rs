//! Device memory accounting with an optional budget.
//!
//! A V100 has 16 GiB of HBM2; the paper's §5.1 scaling study shows
//! G-DBSCAN failing with out-of-memory errors because its adjacency graph
//! grows with the number of *edges*, not points. To reproduce those
//! missing data points deterministically, every algorithm in this
//! workspace *reserves* its major allocations through the device's
//! [`MemoryTracker`]; when a budget is configured, an over-budget
//! reservation fails with [`DeviceError::OutOfMemory`] instead of
//! thrashing the host.
//!
//! Reservations are RAII: dropping a [`MemoryReservation`] returns the
//! bytes to the pool. The tracker also records the high-water mark, which
//! the benchmark harness reports as the algorithm's device-memory
//! footprint.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::fault::{FaultPlan, FaultSite};
use crate::Counters;

/// Errors produced by the simulated device.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceError {
    /// A reservation would exceed the configured memory budget.
    OutOfMemory {
        /// Bytes the failed reservation asked for.
        requested: usize,
        /// Bytes already in use at the time of the request.
        in_use: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A kernel panicked during a fallible launch. The first panic
    /// payload observed is captured (worker threads may race; later
    /// payloads are dropped).
    KernelPanicked {
        /// Device-wide launch ordinal of the failed launch.
        launch: u64,
        /// The panic payload, stringified.
        payload: String,
    },
    /// A launch exceeded the device's configured kernel timeout and was
    /// cancelled at a block boundary by the cooperative watchdog.
    KernelTimeout {
        /// Device-wide launch ordinal of the cancelled launch.
        launch: u64,
        /// Time the launch had been running when cancellation was
        /// observed.
        elapsed: Duration,
    },
    /// A fault scheduled by a [`FaultPlan`] fired at `site`. Used for
    /// injections that have no organic error to masquerade as (e.g.
    /// distributed-rank failures); injected OOMs surface as
    /// [`DeviceError::OutOfMemory`] and injected panics as
    /// [`DeviceError::KernelPanicked`].
    FaultInjected {
        /// The injection site that fired.
        site: FaultSite,
    },
    /// Caller-provided input failed validation (e.g. NaN coordinates).
    InvalidInput {
        /// Human-readable description of the rejected input.
        reason: String,
    },
    /// The request's [`crate::CancelToken`] was cancelled; the launch
    /// loop observed it between kernel launches and abandoned the run.
    Cancelled {
        /// Device-wide launch ordinal at which cancellation was
        /// observed (the launch that did *not* start).
        launch: u64,
    },
    /// The request's [`crate::CancelToken`] deadline passed; observed
    /// between launches or at a block boundary mid-launch.
    DeadlineExceeded {
        /// Device-wide launch ordinal at which expiry was observed.
        launch: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, in_use, budget } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use} B in use \
                 (budget {budget} B)"
            ),
            DeviceError::KernelPanicked { launch, payload } => {
                write!(f, "kernel panicked during launch {launch}: {payload}")
            }
            DeviceError::KernelTimeout { launch, elapsed } => {
                write!(f, "kernel launch {launch} timed out after {elapsed:?}")
            }
            DeviceError::FaultInjected { site } => write!(f, "injected fault: {site}"),
            DeviceError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            DeviceError::Cancelled { launch } => {
                write!(f, "request cancelled before launch {launch}")
            }
            DeviceError::DeadlineExceeded { launch } => {
                write!(f, "request deadline exceeded at launch {launch}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[derive(Debug, Default)]
struct TrackerState {
    in_use: AtomicUsize,
    peak: AtomicUsize,
}

/// Tracks device memory usage against an optional budget.
#[derive(Debug)]
pub struct MemoryTracker {
    budget: Option<usize>,
    state: Arc<TrackerState>,
    /// Lifetime reservation ordinal. Deliberately *outside*
    /// [`Counters`]: counters can be reset mid-run, but fault-injection
    /// ordinals must keep advancing so an ordinal-addressed OOM fires
    /// exactly once per tracker lifetime. Both fresh reservations and
    /// arena-recycle acknowledgements advance it — a recycled buffer
    /// occupies the same fault address space as the allocation it
    /// replaced, so reuse cannot skip an injected OOM.
    ordinal: Arc<AtomicU64>,
    /// Fresh reservations only (what [`MemoryTracker::reservations_made`]
    /// reports): recycle acknowledgements advance `ordinal` but not this.
    fresh: Arc<AtomicU64>,
    counters: Option<Arc<Counters>>,
    plan: Option<Arc<FaultPlan>>,
}

impl MemoryTracker {
    /// Creates a tracker. `budget = None` disables the limit (usage and
    /// peak are still recorded).
    pub fn new(budget: Option<usize>) -> Self {
        Self {
            budget,
            state: Arc::new(TrackerState::default()),
            ordinal: Arc::new(AtomicU64::new(0)),
            fresh: Arc::new(AtomicU64::new(0)),
            counters: None,
            plan: None,
        }
    }

    /// Creates a tracker wired to device counters and an optional fault
    /// plan. Used by `Device`; standalone trackers use
    /// [`MemoryTracker::new`].
    pub(crate) fn with_instrumentation(
        budget: Option<usize>,
        counters: Arc<Counters>,
        plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self {
            budget,
            state: Arc::new(TrackerState::default()),
            ordinal: Arc::new(AtomicU64::new(0)),
            fresh: Arc::new(AtomicU64::new(0)),
            counters: Some(counters),
            plan,
        }
    }

    /// Number of *fresh* reservations requested over this tracker's
    /// lifetime (successful or not). Unlike counters, never reset.
    /// Arena-recycle acknowledgements ([`MemoryTracker::acknowledge_recycle`])
    /// are excluded: they advance the fault-injection ordinal but
    /// allocate nothing, so a warmed arena drives this toward zero
    /// growth across repeated runs.
    pub fn reservations_made(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> usize {
        self.state.in_use.load(Ordering::Relaxed)
    }

    /// Budget bytes not currently reserved (`None` without a budget —
    /// headroom is unbounded). The admission preflight and the telemetry
    /// gauges both read this; note it excludes trimmable arena scratch,
    /// which callers add back themselves.
    pub fn headroom(&self) -> Option<usize> {
        self.budget.map(|budget| budget.saturating_sub(self.in_use()))
    }

    /// High-water mark of reserved bytes since construction (or the last
    /// [`MemoryTracker::reset_peak`]).
    pub fn peak(&self) -> usize {
        self.state.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current usage.
    pub fn reset_peak(&self) {
        self.state.peak.store(self.in_use(), Ordering::Relaxed);
    }

    /// Attempts to reserve `bytes` of device memory.
    ///
    /// On success, returns an RAII guard that releases the bytes on drop.
    /// Fails only when a budget is configured and would be exceeded.
    pub fn reserve(&self, bytes: usize) -> Result<MemoryReservation, DeviceError> {
        self.fresh.fetch_add(1, Ordering::Relaxed);
        if let Some(counters) = &self.counters {
            counters.reservations.fetch_add(1, Ordering::Relaxed);
        }
        self.consult_fault_plan(bytes)?;
        // CAS loop: budget enforcement must be exact even under
        // concurrent reservations.
        let mut current = self.state.in_use.load(Ordering::Relaxed);
        loop {
            let proposed = current.saturating_add(bytes);
            if let Some(budget) = self.budget {
                if proposed > budget {
                    return Err(DeviceError::OutOfMemory {
                        requested: bytes,
                        in_use: current,
                        budget,
                    });
                }
            }
            match self.state.in_use.compare_exchange_weak(
                current,
                proposed,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.state.peak.fetch_max(proposed, Ordering::Relaxed);
                    return Ok(MemoryReservation { state: Arc::clone(&self.state), bytes });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Reserves memory for `n` elements of type `T`.
    pub fn reserve_array<T>(&self, n: usize) -> Result<MemoryReservation, DeviceError> {
        self.reserve(n.saturating_mul(std::mem::size_of::<T>()))
    }

    /// Acknowledges the reuse of an already-reserved buffer of `bytes`
    /// (an arena recycle). Allocates nothing and charges nothing — the
    /// recycled buffer still holds its original reservation — but
    /// occupies one slot in the fault-injection ordinal space, exactly
    /// like the fresh reservation it stands in for: ordinal- and
    /// threshold-addressed OOM injections fire on reuse too.
    pub fn acknowledge_recycle(&self, bytes: usize) -> Result<(), DeviceError> {
        self.consult_fault_plan(bytes)
    }

    /// Advances the fault-injection ordinal and surfaces an injected
    /// OOM, if the plan schedules one for this request.
    fn consult_fault_plan(&self, bytes: usize) -> Result<(), DeviceError> {
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.plan {
            if plan.oom_fires(ordinal, bytes) {
                if let Some(counters) = &self.counters {
                    counters.injected_oom.fetch_add(1, Ordering::Relaxed);
                }
                // Surface as a real OutOfMemory so recovery paths treat
                // injected and organic allocation failures identically.
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    in_use: self.in_use(),
                    budget: self.budget.unwrap_or(0),
                });
            }
        }
        Ok(())
    }
}

/// RAII guard for a device memory reservation.
#[derive(Debug)]
pub struct MemoryReservation {
    state: Arc<TrackerState>,
    bytes: usize,
}

impl MemoryReservation {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.state.in_use.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tracker_never_fails() {
        let tracker = MemoryTracker::new(None);
        let r = tracker.reserve(usize::MAX / 2).unwrap();
        assert_eq!(tracker.in_use(), usize::MAX / 2);
        drop(r);
        assert_eq!(tracker.in_use(), 0);
    }

    #[test]
    fn budget_is_enforced() {
        let tracker = MemoryTracker::new(Some(1000));
        let _a = tracker.reserve(600).unwrap();
        let err = tracker.reserve(500).unwrap_err();
        match err {
            DeviceError::OutOfMemory { requested, in_use, budget } => {
                assert_eq!(requested, 500);
                assert_eq!(in_use, 600);
                assert_eq!(budget, 1000);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        // Exactly filling the budget is allowed.
        let _b = tracker.reserve(400).unwrap();
        assert_eq!(tracker.in_use(), 1000);
    }

    #[test]
    fn drop_releases_bytes() {
        let tracker = MemoryTracker::new(Some(100));
        {
            let _r = tracker.reserve(100).unwrap();
            assert!(tracker.reserve(1).is_err());
        }
        assert!(tracker.reserve(100).is_ok());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let tracker = MemoryTracker::new(None);
        let a = tracker.reserve(70).unwrap();
        let b = tracker.reserve(30).unwrap();
        drop(a);
        drop(b);
        assert_eq!(tracker.peak(), 100);
        assert_eq!(tracker.in_use(), 0);
        tracker.reset_peak();
        assert_eq!(tracker.peak(), 0);
    }

    #[test]
    fn reserve_array_accounts_element_size() {
        let tracker = MemoryTracker::new(None);
        let _r = tracker.reserve_array::<u64>(10).unwrap();
        assert_eq!(tracker.in_use(), 80);
    }

    #[test]
    fn zero_byte_reservation_is_fine() {
        let tracker = MemoryTracker::new(Some(0));
        let _r = tracker.reserve(0).unwrap();
        assert!(tracker.reserve(1).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let tracker = MemoryTracker::new(Some(10));
        let err = tracker.reserve(20).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("out of memory"));
        assert!(text.contains("20"));
        assert!(text.contains("10"));
    }

    #[test]
    fn injected_oom_fires_once_and_is_counted() {
        let counters = Arc::new(Counters::default());
        let plan = Arc::new(FaultPlan::new(3).with_oom_at_reservation(1));
        let tracker = MemoryTracker::with_instrumentation(None, Arc::clone(&counters), Some(plan));
        let _a = tracker.reserve(10).unwrap(); // ordinal 0
        let err = tracker.reserve(10).unwrap_err(); // ordinal 1: injected
        assert!(matches!(err, DeviceError::OutOfMemory { requested: 10, .. }));
        let _b = tracker.reserve(10).unwrap(); // ordinal 2: retry succeeds
        assert_eq!(tracker.reservations_made(), 3);
        let snap = counters.snapshot();
        assert_eq!(snap.reservations, 3);
        assert_eq!(snap.injected_oom, 1);
        // The failed reservation must not leak accounting.
        assert_eq!(tracker.in_use(), 20);
    }

    #[test]
    fn threshold_oom_fires_every_time() {
        let counters = Arc::new(Counters::default());
        let plan = Arc::new(FaultPlan::new(3).with_oom_above_bytes(100));
        let tracker = MemoryTracker::with_instrumentation(None, Arc::clone(&counters), Some(plan));
        assert!(tracker.reserve(100).is_err());
        assert!(tracker.reserve(100).is_err());
        assert!(tracker.reserve(99).is_ok());
        assert_eq!(counters.snapshot().injected_oom, 2);
    }

    #[test]
    fn recycle_acknowledgement_occupies_the_ordinal_space() {
        let counters = Arc::new(Counters::default());
        let plan = Arc::new(FaultPlan::new(3).with_oom_at_reservation(1));
        let tracker = MemoryTracker::with_instrumentation(None, Arc::clone(&counters), Some(plan));
        let _a = tracker.reserve(10).unwrap(); // ordinal 0: fresh
                                               // Ordinal 1 is a recycle: the injected OOM scheduled there must
                                               // fire on the reuse, not slide to the next fresh reservation.
        let err = tracker.acknowledge_recycle(10).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { requested: 10, .. }));
        let _b = tracker.reserve(10).unwrap(); // ordinal 2: clean
        assert_eq!(counters.snapshot().injected_oom, 1);
        // Only fresh reservations are counted as made…
        assert_eq!(tracker.reservations_made(), 2);
        // …and recycles charge no bytes.
        assert_eq!(tracker.in_use(), 20);
    }

    #[test]
    fn threshold_oom_fires_on_recycle() {
        let counters = Arc::new(Counters::default());
        let plan = Arc::new(FaultPlan::new(3).with_oom_above_bytes(100));
        let tracker = MemoryTracker::with_instrumentation(None, Arc::clone(&counters), Some(plan));
        assert!(tracker.acknowledge_recycle(200).is_err());
        assert!(tracker.acknowledge_recycle(50).is_ok());
        assert_eq!(counters.snapshot().injected_oom, 1);
    }

    #[test]
    fn concurrent_reservations_respect_budget() {
        let tracker = Arc::new(MemoryTracker::new(Some(1_000)));
        let successes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let tracker = Arc::clone(&tracker);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Ok(r) = tracker.reserve(10) {
                            successes.fetch_add(1, Ordering::Relaxed);
                            held.push(r);
                        }
                    }
                    held.len()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // The peak can never exceed the budget, regardless of interleaving,
        // and everything must have been released.
        assert!(tracker.peak() <= 1_000);
        assert_eq!(tracker.in_use(), 0);
        assert!(successes.load(Ordering::Relaxed) >= 100);
    }
}
