//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — benchmark
//! groups, `bench_with_input` / `bench_function`, `Bencher::iter`,
//! throughput annotation, `criterion_group!` / `criterion_main!` — with
//! a simple mean-of-samples timer instead of criterion's statistical
//! machinery. Results print one line per benchmark:
//!
//! ```text
//! fig4-scaling/roads/fdbscan/4096  time: 1.234 ms  (10 samples)  thrpt: 3.3 Melem/s
//! ```

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.to_string(), self.sample_size, None, f);
        self
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (separator line in the output).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("{label}  (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let thrpt = throughput.map(|t| format!("  thrpt: {}", t.rate(mean))).unwrap_or_default();
    eprintln!("{label}  time: {mean:?}  ({} samples){thrpt}", bencher.samples.len());
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { function: Some(name.to_owned()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { function: Some(name), parameter: None }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Work-per-iteration annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn rate(&self, mean: Duration) -> String {
        let secs = mean.as_secs_f64().max(1e-12);
        match self {
            Throughput::Elements(n) => format!("{:.3} Melem/s", *n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("{:.3} MiB/s", *n as f64 / secs / (1 << 20) as f64),
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("algo", 42).to_string(), "algo/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3).throughput(Throughput::Elements(10));
            group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    x * 2
                })
            });
            group.finish();
        }
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn criterion_group_macro_compiles_and_runs() {
        demo_group();
    }
}
