//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the one piece this workspace uses: an unbounded
//! multi-producer multi-consumer channel
//! ([`channel::unbounded`]) with cloneable senders *and* receivers —
//! std's mpsc receiver cannot be cloned, which is exactly why the worker
//! pool wants crossbeam semantics. Implemented as a `Mutex<VecDeque>` +
//! `Condvar`; throughput is irrelevant here (the pool sends a handful of
//! job handles per kernel launch).

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty.
        /// Fails once the channel is empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|rx| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
