//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the slice of proptest's API the workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header and pattern arguments), [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`any`],
//! [`collection::vec`], and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   test's deterministic seed; reruns reproduce it exactly.
//! * **Deterministic.** Each test's RNG is seeded from the test name, so
//!   failures are stable across runs and machines.
//! * `prop_assume!` skips the current case rather than resampling.

use std::ops::Range;

pub mod test_runner {
    //! Deterministic RNG driving strategy sampling.

    /// SplitMix64-based test RNG, seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: seed }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising meaningful input diversity.
        Self { cases: 64 }
    }
}

/// A generator of values for one [`proptest!`] argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy {:?}", self);
                let span = (hi - lo) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo + draw as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (only `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty vec size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines deterministic property tests.
///
/// Supports the subset of real proptest's syntax used in this workspace:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), ::std::string::String> = {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l != __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The commonly imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let x = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&x));
            let f = (0.25f32..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn map_flat_map_and_vec_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat =
            (2usize..6).prop_flat_map(|n| collection::vec(0u32..100, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns((a, b) in (0u64..50, 50u64..100), flag in any::<bool>()) {
            prop_assert!(a < b, "a={} b={}", a, b);
            prop_assert_ne!(a, b);
            prop_assume!(flag); // skipped cases must still pass
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
