//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (the subset this workspace uses): [`Mutex`] whose `lock` returns the
//! guard directly, and [`Condvar`] whose `wait` borrows the guard mutably
//! instead of consuming it. Poisoned std locks are transparently
//! recovered — matching parking_lot, which has no poisoning at all.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified. Spurious wakeups are possible, as with any
    /// condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard invariant");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        handle.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn recovers_from_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot has no poisoning: the lock must still be usable.
        assert_eq!(*m.lock(), 1);
    }
}
