//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand` 0.8 API the workspace
//! actually uses: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic per seed, which is all the workspace's
//! seeded dataset generators and tests require. Streams differ from the
//! real `rand::rngs::StdRng` (ChaCha12), which is fine: nothing in the
//! repo depends on the exact byte stream, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample from empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                let v = lo + (hi - lo) * unit;
                if v >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32 => 24, f64 => 53);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types drawable from the "standard" distribution ([`Rng::gen`]).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators (only [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (only `shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0..=4u32);
            assert!(m <= 4);
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1900..=3100).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
