//! Quickstart: cluster a small synthetic point set with FDBSCAN.
//!
//! ```sh
//! cargo run --release -p fdbscan --example quickstart
//! ```

use fdbscan::{fdbscan, Params, NOISE};
use fdbscan_data::blobs;
use fdbscan_device::Device;

fn main() {
    // A simulated data-parallel device (uses all hardware threads).
    let device = Device::with_defaults();

    // 10,000 points: three Gaussian blobs plus 10 % uniform noise.
    let points = blobs::<2>(10_000, 3, 0.02, 1.0, 0.10, /* seed */ 42);

    // eps = 0.03, minpts = 10 (neighborhood sizes include the point).
    let params = Params::new(0.03, 10);
    let (clustering, stats) = fdbscan(&device, &points, params).expect("device out of memory");

    println!(
        "FDBSCAN over {} points (eps = {}, minpts = {})",
        points.len(),
        params.eps,
        params.minpts
    );
    println!("  clusters : {}", clustering.num_clusters);
    println!("  core     : {}", clustering.num_core());
    println!("  border   : {}", clustering.num_border());
    println!("  noise    : {}", clustering.num_noise());
    let mut sizes = clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("  largest clusters: {:?}", &sizes[..sizes.len().min(5)]);

    println!("timing:");
    println!("  index      : {:?}", stats.index_time);
    println!("  preprocess : {:?}", stats.preprocess_time);
    println!("  main       : {:?}", stats.main_time);
    println!("  finalize   : {:?}", stats.finalize_time);
    println!("  total      : {:?}", stats.total_time);
    println!("work counters:");
    println!("  distance computations : {}", stats.counters.distance_computations);
    println!("  BVH nodes visited     : {}", stats.counters.bvh_nodes_visited);
    println!("  union operations      : {}", stats.counters.unions);
    println!("  peak device memory    : {} KiB", stats.peak_memory_bytes / 1024);

    // Look up a few individual points.
    for i in [0usize, 1, 2] {
        let label = clustering.assignments[i];
        if label == NOISE {
            println!("point {i} at {:?} is noise", points[i]);
        } else {
            println!(
                "point {i} at {:?} is in cluster {label} ({:?})",
                points[i], clustering.classes[i]
            );
        }
    }
}
