//! Parameter exploration: sweep eps and minpts over a dataset and print
//! how the clustering changes — the workflow DBSCAN users actually run
//! to pick parameters (and the axes of the paper's Figs. 4, 6, 7).
//!
//! ```sh
//! cargo run --release -p fdbscan --example param_sweep [dataset] [n]
//! ```

use fdbscan::{fdbscan_densebox, Params};
use fdbscan_data::Dataset2;
use fdbscan_device::Device;

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = match args.next().as_deref() {
        Some("ngsim") => Dataset2::Ngsim,
        Some("3d-road") => Dataset2::RoadNetwork,
        _ => Dataset2::PortoTaxi,
    };
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16_384);
    let points = dataset.generate(n, 7);
    let device = Device::with_defaults();

    println!("eps sweep (minpts = 20) on {} with n = {n}:", dataset.name());
    println!(
        "{:>8} {:>9} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "eps", "clusters", "core", "border", "noise", "dense %", "time ms"
    );
    for eps in [0.002f32, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let (c, stats) = fdbscan_densebox(&device, &points, Params::new(eps, 20)).unwrap();
        println!(
            "{:>8} {:>9} {:>8} {:>8} {:>8} {:>8.1}% {:>8.1}",
            eps,
            c.num_clusters,
            c.num_core(),
            c.num_border(),
            c.num_noise(),
            100.0 * stats.dense.unwrap().dense_fraction,
            stats.total_ms()
        );
    }

    println!("\nminpts sweep (eps = 0.01):");
    println!(
        "{:>8} {:>9} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "minpts", "clusters", "core", "border", "noise", "dense %", "time ms"
    );
    for minpts in [2usize, 5, 10, 20, 50, 100, 500] {
        let (c, stats) = fdbscan_densebox(&device, &points, Params::new(0.01, minpts)).unwrap();
        println!(
            "{:>8} {:>9} {:>8} {:>8} {:>8} {:>8.1}% {:>8.1}",
            minpts,
            c.num_clusters,
            c.num_core(),
            c.num_border(),
            c.num_noise(),
            100.0 * stats.dense.unwrap().dense_fraction,
            stats.total_ms()
        );
    }

    println!(
        "\nReading the table: pick eps at the knee where noise stops falling\n\
         rapidly, then raise minpts until spurious micro-clusters disappear."
    );
}
