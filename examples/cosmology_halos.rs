//! Halo finding in a cosmology snapshot: the paper's §5.2 workload.
//! DBSCAN with minpts = 2 is friends-of-friends (FoF) halo finding.
//!
//! ```sh
//! cargo run --release -p fdbscan --example cosmology_halos [n]
//! ```

use fdbscan::{fdbscan, fdbscan_densebox, Params};
use fdbscan_data::cosmology::default_snapshot;
use fdbscan_device::Device;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200_000);
    println!("generating HACC-like snapshot: {n} particles in a 64 Mpc/h box ...");
    let particles = default_snapshot(n, 7);

    let device = Device::with_defaults();
    // The paper's physics-motivated linking length, scaled to the
    // snapshot's sampling density: the FoF rule is b = 0.2 times the
    // mean interparticle spacing (which is how the real run's 0.042
    // comes about at 36M particles in the same volume).
    let spacing = 64.0 / (n as f32).cbrt();
    let eps = 0.2 * spacing;
    let params = Params::new(eps, 2);
    println!("FoF linking length eps = {eps:.4}, minpts = 2");

    let (halos, stats) = fdbscan(&device, &particles, params).expect("device out of memory");

    // Halo mass function: count halos by particle count.
    let sizes = halos.cluster_sizes();
    let halos_ge = |k: usize| sizes.iter().filter(|&&s| s >= k).count();
    println!(
        "\nhalo catalog ({} groups, {} unbound particles):",
        halos.num_clusters,
        halos.num_noise()
    );
    for k in [2usize, 5, 10, 50, 100, 1000] {
        println!("  halos with >= {k:5} particles: {}", halos_ge(k));
    }
    let largest = sizes.iter().max().copied().unwrap_or(0);
    println!("  largest halo: {largest} particles");
    println!(
        "\nclustered in {:?} ({} unions, {} distance computations)",
        stats.total_time, stats.counters.unions, stats.counters.distance_computations
    );

    // Compare the two tree algorithms across minpts, like Fig. 6.
    println!("\nminpts sweep at eps = {eps:.4} (Fig. 6 shape):");
    println!("{:>8} {:>14} {:>14} {:>10}", "minpts", "fdbscan", "densebox", "dense %");
    for minpts in [2usize, 5, 10, 50] {
        let p = Params::new(eps, minpts);
        let (_, a) = fdbscan(&device, &particles, p).unwrap();
        let (_, b) = fdbscan_densebox(&device, &particles, p).unwrap();
        println!(
            "{:>8} {:>12.1}ms {:>12.1}ms {:>9.1}%",
            minpts,
            a.total_ms(),
            b.total_ms(),
            100.0 * b.dense.unwrap().dense_fraction
        );
    }
}
