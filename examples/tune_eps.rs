//! Parameter tuning with the k-distance heuristic (Ester et al. 1996):
//! compute the sorted k-dist curve on the same BVH the clustering uses,
//! locate the knee, and cluster with the suggested eps.
//!
//! ```sh
//! cargo run --release -p fdbscan --example tune_eps [n] [minpts]
//! ```

use fdbscan::{fdbscan_auto, kdist_curve, suggest_eps, Params};
use fdbscan_data::blobs;
use fdbscan_device::Device;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let minpts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    // Unknown-to-the-user structure: 6 blobs + 20 % noise.
    let points = blobs::<2>(n, 6, 0.015, 1.0, 0.2, 99);
    let device = Device::with_defaults();

    println!("k-dist curve (k = minpts = {minpts}) over {n} points:");
    let curve = kdist_curve(&device, &points, minpts, 64).unwrap();
    let maxd = curve.first().copied().unwrap_or(0.0);
    for (i, &d) in curve.iter().enumerate().step_by(curve.len().div_ceil(16).max(1)) {
        let bar = "#".repeat(((d / maxd) * 50.0) as usize);
        println!("{i:>5}  {d:>8.4}  {bar}");
    }

    let eps = suggest_eps(&device, &points, minpts).unwrap().expect("curve has a knee");
    println!("\nsuggested eps = {eps:.4} (knee of the k-dist curve)");

    let (clustering, stats, choice) =
        fdbscan_auto(&device, &points, Params::new(eps, minpts)).unwrap();
    println!(
        "clustered with {choice:?}: {} clusters, {} noise, {:.1} ms",
        clustering.num_clusters,
        clustering.num_noise(),
        stats.total_ms()
    );
    let mut sizes = clustering.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(8)]);
    println!("(the generator planted 6 blobs in 20% uniform noise)");
}
