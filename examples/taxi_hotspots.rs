//! Taxi hotspot mining: FDBSCAN-DenseBox on Porto-taxi-like trajectory
//! data — the workload family where dense cells dominate (paper §5.1).
//!
//! ```sh
//! cargo run --release -p fdbscan --example taxi_hotspots [n]
//! ```
//!
//! Pass a point count (default 50,000). Optionally pass a CSV path as a
//! second argument to cluster your own longitude/latitude extract
//! instead of the synthetic data.

use fdbscan::{fdbscan, fdbscan_densebox, Params};
use fdbscan_data::{io::load_csv, porto_taxi_like};
use fdbscan_device::Device;
use fdbscan_geom::Point2;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let points: Vec<Point2> = match args.next() {
        Some(path) => {
            println!("loading {path} ...");
            load_csv(std::path::Path::new(&path)).expect("failed to load CSV")
        }
        None => porto_taxi_like(n, 2024),
    };
    println!("clustering {} taxi GPS samples", points.len());

    let device = Device::with_defaults();
    // Hotspots: tight radius, strong density requirement.
    let params = Params::new(0.01, 50);

    let (clusters, dense_stats) =
        fdbscan_densebox(&device, &points, params).expect("device out of memory");
    let (_, plain_stats) = fdbscan(&device, &points, params).expect("device out of memory");

    println!("\nhotspots found: {}", clusters.num_clusters);
    let mut ranked: Vec<(usize, usize)> =
        clusters.cluster_sizes().into_iter().enumerate().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1));
    for (rank, (id, size)) in ranked.iter().take(8).enumerate() {
        // Centroid of the hotspot.
        let mut cx = 0.0f64;
        let mut cy = 0.0f64;
        for (p, &a) in points.iter().zip(&clusters.assignments) {
            if a == *id as i64 {
                cx += p[0] as f64;
                cy += p[1] as f64;
            }
        }
        println!(
            "  #{rank}: cluster {id} with {size} samples around ({:.3}, {:.3})",
            cx / *size as f64,
            cy / *size as f64
        );
    }
    println!("  noise (sparse traffic): {} samples", clusters.num_noise());

    let d = dense_stats.dense.unwrap();
    println!("\ndense-cell structure (the FDBSCAN-DenseBox advantage):");
    println!("  non-empty cells : {}", d.num_cells);
    println!("  dense cells     : {}", d.num_dense_cells);
    println!("  points in dense : {} ({:.1} %)", d.points_in_dense_cells, 100.0 * d.dense_fraction);
    println!(
        "  distance computations: densebox {} vs plain fdbscan {} ({:.1}x fewer)",
        dense_stats.counters.distance_computations,
        plain_stats.counters.distance_computations,
        plain_stats.counters.distance_computations as f64
            / dense_stats.counters.distance_computations.max(1) as f64
    );
    println!(
        "  wall time: densebox {:?} vs plain {:?}",
        dense_stats.total_time, plain_stats.total_time
    );
}
