//! Distributed-memory DBSCAN: domain decomposition with eps-ghost zones
//! over per-rank FDBSCAN, merged through a global union-find (the
//! paper's §6 "combining the proposed approach with distributed
//! computations").
//!
//! ```sh
//! cargo run --release -p fdbscan-dist --example distributed [n] [ranks]
//! ```

use fdbscan::{fdbscan, Params};
use fdbscan_data::cosmology::default_snapshot;
use fdbscan_device::Device;
use fdbscan_dist::distributed_fdbscan;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("generating {n} cosmology particles ...");
    let points = default_snapshot(n, 11);
    let spacing = 64.0 / (n as f32).cbrt();
    let params = Params::new(0.2 * spacing, 2);
    println!("FoF parameters: eps = {:.4}, minpts = 2\n", params.eps);

    let device = Device::with_defaults();

    // Single-device reference.
    let (reference, ref_stats) = fdbscan(&device, &points, params).unwrap();
    println!(
        "single device : {} halos, {} unbound, {:.1} ms",
        reference.num_clusters,
        reference.num_noise(),
        ref_stats.total_ms()
    );

    // Distributed run.
    let (clustering, stats) = distributed_fdbscan(&device, &points, params, ranks).unwrap();
    println!(
        "{} ranks       : {} halos, {} unbound, {:.1} ms (cut along axis {})",
        ranks,
        clustering.num_clusters,
        clustering.num_noise(),
        stats.total_time.as_secs_f64() * 1e3,
        stats.axis
    );
    for (r, rs) in stats.ranks.iter().enumerate() {
        println!(
            "  rank {r}: {:>8} owned, {:>7} ghosts ({:.1} % replication)",
            rs.owned,
            rs.ghosts,
            100.0 * rs.ghosts as f64 / (rs.owned + rs.ghosts).max(1) as f64
        );
    }

    assert_eq!(clustering.num_clusters, reference.num_clusters);
    println!("\ncluster counts match the single-device reference ✓");
    println!(
        "note: ranks are simulated sequentially on one device; the structure\n\
         (ghost widths, boundary merges, border claims across ranks) is what a\n\
         real MPI+GPU deployment would ship."
    );
}
