//! Deterministic replay of a failed run from its manifest.
//!
//! A checkpointed FDBSCAN run is killed mid-pipeline by an injected
//! fault; the checkpoint and a [`RunManifest`] land on disk. The replay
//! then starts from *nothing but the manifest*: it rebuilds the
//! dataset from the recorded seed, re-arms the same fault plan on a
//! fresh device, re-executes — and dies the same death, producing
//! bit-identical phase hashes (sequential devices make the execution
//! order exact). Finally the persisted checkpoint resumes the run on a
//! healthy device and the output is checked against an uninterrupted
//! run.
//!
//! ```sh
//! cargo run --release -p fdbscan --example replay_run
//!
//! # Keep the checkpoint + manifest files around for inspection:
//! FDBSCAN_CKPT_DIR=/tmp/fdbscan-ckpt cargo run --release -p fdbscan --example replay_run
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use fdbscan::fdbscan_impl::FDBSCAN_ALGORITHM;
use fdbscan::labels::assert_core_equivalent;
use fdbscan::{build_manifest, checkpoint_for, fdbscan_run_from, run_fingerprint, Params};
use fdbscan_device::snapshot::{PipelineCheckpoint, RunManifest};
use fdbscan_device::{Device, DeviceConfig, FaultPlan};
use fdbscan_geom::Point2;
use rand::{rngs::StdRng, Rng, SeedableRng};

const RUN_ID: &str = "replay-demo";
const DATA_SEED: u64 = 42;

fn dataset(seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2_000).map(|_| Point2::new([rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)])).collect()
}

fn main() {
    let dir = PipelineCheckpoint::env_dir()
        .unwrap_or_else(|| std::env::temp_dir().join("fdbscan-replay"));
    let points = dataset(DATA_SEED);
    let params = Params::new(0.15, 5);

    // --- reference: the run nothing ever happened to ---------------------
    let healthy = Device::new(DeviceConfig::sequential());
    let mut probe = checkpoint_for(FDBSCAN_ALGORITHM, &points, params);
    let (expected, stats) =
        fdbscan_run_from(&healthy, &points, params, Default::default(), &mut probe)
            .expect("reference run");
    let total_launches = healthy.counters().snapshot().kernel_launches;
    println!("reference run: {} clusters, {total_launches} kernel launches", expected.num_clusters);

    // --- 1. a run dies mid-main-phase ------------------------------------
    // Aim the fault at the first launch of the main phase: index and
    // preprocessing complete (and checkpoint), the traversal does not.
    let before_main = stats.phase_counters.index.kernel_launches
        + stats.phase_counters.preprocess.kernel_launches;
    let plan = FaultPlan::new(DATA_SEED).with_kernel_panic_at(before_main, 0);
    let device = Device::new(DeviceConfig::sequential().with_fault_plan(plan));
    let mut ckpt = checkpoint_for(FDBSCAN_ALGORITHM, &points, params);
    let death = run_to_death(&device, &points, params, &mut ckpt);
    println!("\nrun killed: {death}");
    println!("checkpointed phases at death: {:?}", ckpt.phase_names());

    let ckpt_path = ckpt.save_to_dir(&dir).expect("save checkpoint");
    let manifest =
        build_manifest(RUN_ID, FDBSCAN_ALGORITHM, &points, params, DATA_SEED, &device, &ckpt);
    let manifest_path = manifest.save_to_dir(&dir).expect("save manifest");
    println!("saved {} and {}", ckpt_path.display(), manifest_path.display());

    // --- 2. replay from the manifest alone -------------------------------
    // Pretend this is a different process days later: all it has is the
    // directory and the run id.
    let loaded = RunManifest::load_from_dir(&dir, RUN_ID).expect("load manifest");
    println!("\nreplaying from manifest:\n{}", loaded.to_pretty());

    let re_points = dataset(loaded.data_seed);
    let re_params = Params::new(loaded.eps(), loaded.minpts as usize);
    assert_eq!(
        run_fingerprint(&re_points, re_params),
        loaded.fingerprint,
        "dataset rebuilt from the seed must fingerprint identically"
    );
    let mut re_config =
        DeviceConfig::sequential().with_workers(loaded.workers).with_block_size(loaded.block_size);
    if let Some(plan) = loaded.fault_plan.clone() {
        re_config = re_config.with_fault_plan(plan);
    }
    let re_device = Device::new(re_config);
    let mut re_ckpt = checkpoint_for(&loaded.algorithm, &re_points, re_params);
    let re_death = run_to_death(&re_device, &re_points, re_params, &mut re_ckpt);
    println!("replayed run died identically: {re_death}");

    // Bit-identical replay: every phase the original run completed
    // hashes to exactly the same value the manifest recorded.
    let replayed: std::collections::HashMap<_, _> = re_ckpt.phase_hashes().into_iter().collect();
    for (phase, recorded) in &loaded.phase_hashes {
        let got = replayed.get(phase).copied();
        assert_eq!(
            got,
            Some(*recorded),
            "phase '{phase}' hash mismatch: recorded {recorded:#018x}, replayed {got:?}"
        );
        println!("phase '{phase}': hash {recorded:#018x} reproduced");
    }

    // --- 3. resume the replayed run on a healthy device ------------------
    let resume_device = Device::new(DeviceConfig::sequential());
    let (recovered, _) =
        fdbscan_run_from(&resume_device, &re_points, re_params, Default::default(), &mut re_ckpt)
            .expect("resume");
    assert_core_equivalent(&expected, &recovered);
    let resumed_launches = resume_device.counters().snapshot().kernel_launches;
    println!(
        "\nresumed run: {} clusters (matches the uninterrupted run), \
         {resumed_launches} launches vs {total_launches} from scratch",
        recovered.num_clusters
    );
}

/// Runs to the injected fault, returning a description of the death.
/// Faults in fallible kernels surface as `Err`; faults landing in
/// infrastructure kernels on the infallible API unwind — either way the
/// checkpoint retains every phase completed before the fault.
fn run_to_death(
    device: &Device,
    points: &[Point2],
    params: Params,
    ckpt: &mut PipelineCheckpoint,
) -> String {
    // Silence the default hook while dying on purpose: the death is
    // the demonstration, not a bug to backtrace.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        fdbscan_run_from(device, points, params, Default::default(), ckpt)
    }));
    std::panic::set_hook(hook);
    match outcome {
        Ok(Ok(_)) => panic!("the fault plan should have killed this run"),
        Ok(Err(err)) => format!("{err}"),
        Err(payload) => match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "kernel panic".to_string(),
        },
    }
}
