//! Side-by-side comparison of all four GPU algorithms on one dataset —
//! a miniature of the paper's §5.1 study, with work counters.
//!
//! ```sh
//! cargo run --release -p fdbscan --example compare_algorithms [dataset] [n]
//! ```
//!
//! `dataset` is one of `ngsim`, `porto-taxi`, `3d-road` (default
//! `porto-taxi`); `n` defaults to 16384 (the paper's sample size).

use fdbscan::baselines::{cuda_dclust, gdbscan};
use fdbscan::{fdbscan, fdbscan_densebox, Clustering, Params, RunStats};
use fdbscan_data::Dataset2;
use fdbscan_device::{Device, DeviceError};
use fdbscan_geom::Point2;

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = match args.next().as_deref() {
        Some("ngsim") => Dataset2::Ngsim,
        Some("3d-road") => Dataset2::RoadNetwork,
        _ => Dataset2::PortoTaxi,
    };
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16_384);

    let points = dataset.generate(n, 123);
    // The paper's minpts-study settings per dataset (Fig. 4(a)(b)(c)).
    let params = match dataset {
        Dataset2::Ngsim => Params::new(0.005, 500),
        Dataset2::PortoTaxi => Params::new(0.01, 50),
        Dataset2::RoadNetwork => Params::new(0.08, 100),
    };
    println!(
        "dataset = {}, n = {}, eps = {}, minpts = {}\n",
        dataset.name(),
        n,
        params.eps,
        params.minpts
    );

    let device = Device::with_defaults();
    type Algo = fn(&Device, &[Point2], Params) -> Result<(Clustering, RunStats), DeviceError>;
    let algorithms: [(&str, Algo); 4] = [
        ("cuda-dclust", |d, p, pa| cuda_dclust(d, p, pa)),
        ("g-dbscan", |d, p, pa| gdbscan(d, p, pa)),
        ("fdbscan", |d, p, pa| fdbscan(d, p, pa)),
        ("fdbscan-densebox", |d, p, pa| fdbscan_densebox(d, p, pa)),
    ];

    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>12} {:>12} {:>10}",
        "algorithm", "time(ms)", "clusters", "noise", "distances", "unions", "mem(KiB)"
    );
    for (name, run) in algorithms {
        match run(&device, &points, params) {
            Ok((clustering, stats)) => {
                println!(
                    "{:<18} {:>9.1} {:>9} {:>9} {:>12} {:>12} {:>10}",
                    name,
                    stats.total_ms(),
                    clustering.num_clusters,
                    clustering.num_noise(),
                    stats.counters.distance_computations,
                    stats.counters.unions,
                    stats.peak_memory_bytes / 1024
                );
            }
            Err(e) => println!("{name:<18} FAILED: {e}"),
        }
    }

    println!(
        "\nNote: on this simulated device, wall time tracks total work; the paper's\n\
         GPU numbers additionally reward the batched, divergence-free execution of\n\
         the tree algorithms. Distance counts are the architecture-independent\n\
         comparison."
    );
}
