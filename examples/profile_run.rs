//! Profile a clustering run with the device tracer.
//!
//! ```sh
//! # Print the text timeline and the run report to stdout:
//! cargo run --release -p fdbscan --example profile_run
//!
//! # Or capture a Perfetto-loadable Chrome trace (open at ui.perfetto.dev):
//! FDBSCAN_TRACE=trace.json cargo run --release -p fdbscan --example profile_run
//! ```

use fdbscan::{fdbscan, Params, RunReport};
use fdbscan_data::blobs;
use fdbscan_device::{Device, DeviceConfig, TraceFormat};

fn main() {
    // `with_tracing()` force-enables the tracer; without it the tracer
    // follows the FDBSCAN_TRACE environment variable (and exports there
    // automatically when the device is dropped).
    let device = Device::new(DeviceConfig::default().with_tracing());

    let points = blobs::<2>(20_000, 4, 0.02, 1.0, 0.10, 42);
    let params = Params::new(0.03, 10);
    let (clustering, stats) = fdbscan(&device, &points, params).expect("run failed");
    println!("{} clusters over {} points\n", clustering.num_clusters, points.len());

    // Per-phase / per-kernel timeline, indented by span nesting.
    println!("=== timeline ===");
    print!("{}", device.tracer().export(TraceFormat::Text));

    // Per-kernel duration histograms (p50/p95 with log2 resolution).
    println!("\n=== kernel histograms ===");
    for h in device.tracer().histogram_summaries() {
        println!(
            "{:<24} count {:>4}  p50 {:>9} ns  p95 {:>9} ns  max {:>9} ns",
            h.label, h.count, h.p50_ns, h.p95_ns, h.max_ns
        );
    }

    // Machine-readable report: params, stats, per-phase counters,
    // histogram summaries — one JSON object.
    let report = RunReport::success("fdbscan", "blobs", points.len(), params, stats)
        .with_histograms(device.tracer().histogram_summaries());
    println!("\n=== run report ===");
    println!("{}", report.to_json().to_pretty(2));
}
